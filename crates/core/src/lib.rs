//! `hattrick` — the HATtrick HTAP benchmark (the paper's contribution).
//!
//! * [`gen`] — SSB-based data generation at a configurable scale factor.
//! * [`workload`] — the three HATtrick transactions (New Order, Payment,
//!   Count Orders) and the 13-query analytical batches.
//! * [`harness`] — client drivers, warm-up/measurement phases, commit-time
//!   registry, and per-operating-point measurement.
//! * [`openloop`] — seeded arrival schedules (Poisson / bursty / step
//!   overload) and config for the open-loop overload driver
//!   ([`Harness::run_open_loop`](harness::Harness::run_open_loop)).
//! * [`sched`] — the elastic T/A core scheduler: a seeded, deterministic
//!   AIMD + hysteresis controller that reassigns a fixed core budget
//!   between the transactional and analytical worker populations at tick
//!   granularity ([`SchedPolicy`](sched::SchedPolicy)).
//! * [`freshness`] — freshness-score computation and aggregation (§4).
//! * [`frontier`] — the saturation method, grid graph, throughput frontier,
//!   proportional line/bounding box annotations, and the design-category
//!   classifier (§3).
//! * [`report`] — text/CSV rendering of frontiers, grids, and CDFs.
//! * [`artifact`] — the versioned JSON run artifact (config + per-point
//!   metric snapshots + time series), written by `hatcli --metrics-out`.
//!
//! Quick start:
//!
//! ```
//! use std::sync::Arc;
//! use hattrick::gen::{generate, ScaleFactor};
//! use hattrick::harness::{BenchmarkConfig, Harness};
//! use hat_engine::{EngineConfig, ShdEngine};
//!
//! let data = generate(ScaleFactor(0.0005), 42);
//! let engine = ShdEngine::new(EngineConfig::default());
//! data.load_into(&engine).unwrap();
//! let mut cfg = BenchmarkConfig::default();
//! cfg.warmup = std::time::Duration::from_millis(20);
//! cfg.measure = std::time::Duration::from_millis(60);
//! let harness = Harness::new(Arc::new(engine), data.profile.clone(), cfg);
//! let point = harness.run_point(1, 1).unwrap();
//! assert!(point.tps > 0.0 && point.qps > 0.0);
//! ```

pub mod artifact;
pub mod freshness;
pub mod frontier;
pub mod gen;
pub mod harness;
pub mod openloop;
pub mod report;
pub mod sched;
pub mod svg;
pub mod workload;

pub use artifact::{RunArtifact, RunConfig, SCHEMA_VERSION};
pub use freshness::{cdf, score_query, CommitRegistry, FreshnessAgg, FreshnessSample};
pub use frontier::{
    build_grid, classify, find_saturation, sample_random, FixedKind, Frontier,
    FrontierPoint, GridGraph, GridLine, SaturationConfig, ShapeClass,
};
pub use gen::{generate, DataProfile, GeneratedData, ScaleFactor, MAX_TXN_CLIENTS};
pub use harness::{
    BenchmarkConfig, Harness, OpenLoopMeasurement, PointMeasurement, RetryBudget,
    RetryBudgetConfig, RetryPolicy, SamplePhase, TimeSeriesSample,
};
pub use openloop::{arrival_schedule, ArrivalShape, OpenLoopConfig, OpenLoopTick};
pub use sched::{
    split_changes, trace_lines, ElasticController, SchedDecision, SchedPolicy,
    SchedReason, SchedSignal, SchedTarget,
};
pub use workload::{query_batch, run_transaction, TxnKind, TxnMix, WorkloadState};
