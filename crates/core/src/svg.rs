//! Dependency-free SVG rendering of the paper's plot families: throughput
//! frontiers with proportional-line and bounding-box annotations, grid
//! graphs (fixed-T / fixed-A line families), and freshness CDFs.
//!
//! The `figures` harness writes one SVG per panel next to its CSV, so a
//! run's output is viewable without any plotting toolchain.

use std::fmt::Write as _;

use crate::frontier::{FixedKind, Frontier, GridGraph};

/// Chart geometry.
const W: f64 = 640.0;
const H: f64 = 480.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

/// A named line/scatter series.
pub struct SvgSeries<'a> {
    pub name: &'a str,
    pub color: &'a str,
    /// Draw a connecting polyline (in addition to point markers).
    pub line: bool,
    /// Dash pattern (e.g. `"6,4"`) or empty for solid.
    pub dash: &'a str,
    pub points: Vec<(f64, f64)>,
}

struct Scale {
    x_max: f64,
    y_max: f64,
}

impl Scale {
    fn x(&self, v: f64) -> f64 {
        MARGIN_L + (v / self.x_max) * (W - MARGIN_L - MARGIN_R)
    }

    fn y(&self, v: f64) -> f64 {
        H - MARGIN_B - (v / self.y_max) * (H - MARGIN_T - MARGIN_B)
    }
}

/// Default categorical palette (color-blind-safe-ish).
pub const PALETTE: [&str; 6] =
    ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf"];

fn axis_ticks(max: f64) -> Vec<f64> {
    if max <= 0.0 {
        return vec![0.0];
    }
    // A "nice" step: 1/2/5 × 10^k giving 4-8 ticks.
    let raw = max / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|s| max / s <= 6.0)
        .unwrap_or(mag * 10.0);
    let mut ticks = Vec::new();
    let mut v = 0.0;
    while v <= max * 1.0001 {
        ticks.push(v);
        v += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders a multi-series chart into an SVG string.
pub fn chart(title: &str, x_label: &str, y_label: &str, series: &[SvgSeries<'_>]) -> String {
    let x_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let y_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let sc = Scale { x_max: x_max * 1.05, y_max: y_max * 1.05 };

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif">"#
    );
    let _ = write!(svg, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
    let _ = write!(
        svg,
        r#"<text x="{}" y="22" font-size="15" text-anchor="middle" font-weight="bold">{}</text>"#,
        W / 2.0,
        escape(title)
    );

    // Axes.
    let (x0, y0) = (MARGIN_L, H - MARGIN_B);
    let _ = write!(
        svg,
        r#"<line x1="{x0}" y1="{y0}" x2="{}" y2="{y0}" stroke="black"/>"#,
        W - MARGIN_R
    );
    let _ = write!(
        svg,
        r#"<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{MARGIN_T}" stroke="black"/>"#
    );
    for t in axis_ticks(sc.x_max) {
        let x = sc.x(t);
        let _ = write!(
            svg,
            r#"<line x1="{x}" y1="{y0}" x2="{x}" y2="{}" stroke="black"/><text x="{x}" y="{}" font-size="11" text-anchor="middle">{}</text>"#,
            y0 + 5.0,
            y0 + 18.0,
            fmt_tick(t)
        );
    }
    for t in axis_ticks(sc.y_max) {
        let y = sc.y(t);
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{y}" x2="{x0}" y2="{y}" stroke="black"/><text x="{}" y="{}" font-size="11" text-anchor="end">{}</text>"#,
            x0 - 5.0,
            x0 - 8.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" font-size="13" text-anchor="middle">{}</text>"#,
        (MARGIN_L + W - MARGIN_R) / 2.0,
        H - 12.0,
        escape(x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" font-size="13" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        (MARGIN_T + H - MARGIN_B) / 2.0,
        (MARGIN_T + H - MARGIN_B) / 2.0,
        escape(y_label)
    );

    // Series.
    for s in series {
        if s.line && s.points.len() > 1 {
            let path: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sc.x(x), sc.y(y)))
                .collect();
            let dash = if s.dash.is_empty() {
                String::new()
            } else {
                format!(r#" stroke-dasharray="{}""#, s.dash)
            };
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="2"{dash}/>"#,
                path.join(" "),
                s.color
            );
        }
        for &(x, y) in &s.points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3.5" fill="{}"/>"#,
                sc.x(x),
                sc.y(y),
                s.color
            );
        }
    }

    // Legend (entries with empty names are hidden — used by the grid
    // chart to avoid repeating a family label per line).
    let mut ly = MARGIN_T + 8.0;
    for s in series {
        if s.name.is_empty() {
            continue;
        }
        let lx = W - MARGIN_R - 170.0;
        let _ = write!(
            svg,
            r#"<rect x="{lx}" y="{}" width="12" height="12" fill="{}"/><text x="{}" y="{}" font-size="12">{}</text>"#,
            ly - 10.0,
            s.color,
            lx + 18.0,
            ly,
            escape(s.name)
        );
        ly += 18.0;
    }

    svg.push_str("</svg>");
    svg
}

/// A frontier chart with proportional line and bounding box (Figure 2's
/// style).
pub fn frontier_svg(title: &str, frontiers: &[(&str, &Frontier)]) -> String {
    let mut series = Vec::new();
    for (i, (name, f)) in frontiers.iter().enumerate() {
        series.push(SvgSeries {
            name,
            color: PALETTE[i % PALETTE.len()],
            line: true,
            dash: "",
            points: f.points.iter().map(|p| (p.t, p.a)).collect(),
        });
    }
    // Annotations from the first frontier.
    if let Some((_, f)) = frontiers.first() {
        series.push(SvgSeries {
            name: "proportional line",
            color: "#555555",
            line: true,
            dash: "6,4",
            points: vec![(0.0, f.x_a), (f.x_t, 0.0)],
        });
        series.push(SvgSeries {
            name: "bounding box",
            color: "#bbbbbb",
            line: true,
            dash: "2,3",
            points: vec![(0.0, f.x_a), (f.x_t, f.x_a), (f.x_t, 0.0)],
        });
    }
    chart(title, "T throughput (tps)", "A throughput (qps)", &series)
}

/// A frontier chart with an elastic per-tick trajectory overlaid: the
/// static frontier is the envelope of fixed splits; `trajectory` is the
/// elastic run's `(tps, qps)` per tick, drawn as a dashed path so the
/// controller's walk between the axes is visible against it. Ticks
/// where neither side produced work (`(0, 0)`) are dropped — they are
/// warmup or saturation stalls, not trajectory.
pub fn frontier_overlay_svg(
    title: &str,
    frontiers: &[(&str, &Frontier)],
    trajectory_name: &str,
    trajectory: &[(f64, f64)],
) -> String {
    let mut series = Vec::new();
    for (i, (name, f)) in frontiers.iter().enumerate() {
        series.push(SvgSeries {
            name,
            color: PALETTE[i % PALETTE.len()],
            line: true,
            dash: "",
            points: f.points.iter().map(|p| (p.t, p.a)).collect(),
        });
    }
    let walk: Vec<(f64, f64)> = trajectory
        .iter()
        .copied()
        .filter(|&(t, a)| t > 0.0 || a > 0.0)
        .collect();
    series.push(SvgSeries {
        name: trajectory_name,
        color: PALETTE[(frontiers.len() + 1) % PALETTE.len()],
        line: true,
        dash: "4,3",
        points: walk,
    });
    chart(title, "T throughput (tps)", "A throughput (qps)", &series)
}

/// A grid-graph chart: every fixed-T and fixed-A line (Figure 2a's style).
pub fn grid_svg(title: &str, grid: &GridGraph) -> String {
    let mut series = Vec::new();
    for (family, color) in
        [(&grid.fixed_t, PALETTE[0]), (&grid.fixed_a, PALETTE[1])]
    {
        for line in family.iter() {
            let name = match line.kind {
                FixedKind::FixedT => "fixed-T lines",
                FixedKind::FixedA => "fixed-A lines",
            };
            series.push(SvgSeries {
                name,
                color,
                line: true,
                dash: "",
                points: line.points.iter().map(|p| (p.t, p.a)).collect(),
            });
        }
    }
    // Deduplicate legend entries by keeping names only on the first of
    // each family (the chart function prints every entry; cheap fix:
    // blank the repeats).
    let mut seen = std::collections::HashSet::new();
    for s in &mut series {
        if !seen.insert(s.name) {
            s.name = "";
        }
    }
    series.retain(|s| !s.points.is_empty());
    chart(title, "T throughput (tps)", "A throughput (qps)", &series)
}

/// A freshness-CDF chart (Figure 8b's style).
pub fn cdf_svg(title: &str, cdfs: &[(&str, &[(f64, f64)])]) -> String {
    let series: Vec<SvgSeries> = cdfs
        .iter()
        .enumerate()
        .map(|(i, (name, points))| SvgSeries {
            name,
            color: PALETTE[i % PALETTE.len()],
            line: true,
            dash: "",
            points: points.to_vec(),
        })
        .collect();
    chart(title, "freshness score (s)", "fraction of queries", &series)
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::FrontierPoint;

    fn frontier() -> Frontier {
        Frontier::from_points(vec![
            FrontierPoint { t: 100.0, a: 0.0, t_clients: 4, a_clients: 0 },
            FrontierPoint { t: 60.0, a: 6.0, t_clients: 2, a_clients: 2 },
            FrontierPoint { t: 0.0, a: 10.0, t_clients: 0, a_clients: 4 },
        ])
    }

    #[test]
    fn chart_is_wellformed_svg() {
        let svg = chart(
            "demo <title>",
            "x",
            "y",
            &[SvgSeries {
                name: "s&1",
                color: "#123456",
                line: true,
                dash: "",
                points: vec![(0.0, 1.0), (2.0, 3.0)],
            }],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("demo &lt;title&gt;"), "title escaped");
        assert!(svg.contains("s&amp;1"), "legend escaped");
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
        // Balanced tag count sanity.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn frontier_svg_includes_annotations() {
        let f = frontier();
        let svg = frontier_svg("panel", &[("engine-a", &f)]);
        assert!(svg.contains("proportional line"));
        assert!(svg.contains("bounding box"));
        assert!(svg.contains("engine-a"));
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn frontier_overlay_draws_trajectory_and_drops_dead_ticks() {
        let f = frontier();
        let walk =
            [(0.0, 0.0), (80.0, 2.0), (70.0, 4.0), (0.0, 0.0), (60.0, 5.0)];
        let svg = frontier_overlay_svg(
            "overlay",
            &[("static frontier", &f)],
            "elastic trajectory",
            &walk,
        );
        assert!(svg.contains("static frontier"));
        assert!(svg.contains("elastic trajectory"));
        assert!(svg.contains(r#"stroke-dasharray="4,3""#), "dashed walk");
        // 3 frontier points + 3 surviving trajectory points; the two
        // (0, 0) stalls are dropped.
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn multi_frontier_uses_distinct_colors() {
        let f1 = frontier();
        let f2 = frontier();
        let svg = frontier_svg("cmp", &[("a", &f1), ("b", &f2)]);
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
    }

    #[test]
    fn cdf_svg_renders_all_series() {
        let a = [(0.0, 0.5), (1.0, 1.0)];
        let b = [(0.0, 0.2), (2.0, 1.0)];
        let svg = cdf_svg("cdfs", &[("20:80", &a), ("80:20", &b)]);
        assert!(svg.contains("20:80"));
        assert!(svg.contains("80:20"));
    }

    #[test]
    fn ticks_are_nice() {
        let t = axis_ticks(100.0);
        assert_eq!(t.first(), Some(&0.0));
        assert!(t.len() >= 4 && t.len() <= 8, "{t:?}");
        let t = axis_ticks(7.3);
        assert!(t.iter().all(|v| *v <= 7.31));
        assert_eq!(axis_ticks(0.0), vec![0.0]);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(25000.0), "25k");
        assert_eq!(fmt_tick(12.0), "12");
        assert_eq!(fmt_tick(0.25), "0.25");
    }
}
