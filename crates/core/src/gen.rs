//! SSB-based data generation for the HATtrick schema (§5.1, Figure 4).
//!
//! Follows SSB's scaling rules with HATtrick's extensions:
//!
//! | relation  | rows                           | HATtrick additions        |
//! |-----------|--------------------------------|---------------------------|
//! | LINEORDER | 6,000,000 × SF                 | —                         |
//! | CUSTOMER  | 30,000 × SF                    | `PAYMENTCNT`              |
//! | SUPPLIER  | 2,000 × SF                     | `YTD`                     |
//! | PART      | 200,000 × (1 + ⌊log₂ SF⌋)      | `PRICE`                   |
//! | DATE      | 2,557 (7 years)                | —                         |
//! | HISTORY   | one row per distinct order (≈25% of LINEORDER) | new      |
//! | FRESHNESS | one single-column row per T-client | new                   |
//!
//! Fractional scale factors are supported (this reproduction runs SF < 1 on
//! a single core; see DESIGN.md) — counts scale linearly with sensible
//! minimums. Generation is deterministic given the seed.

use std::sync::Arc;

use hat_common::dates::{self, CalendarDate};
use hat_common::ids::TableId;
use hat_common::rng::HatRng;
use hat_common::value::row_from;
use hat_common::{Money, Row, Value};

/// Maximum transactional clients a run may use; one FRESHNESS row is
/// pre-created per slot.
pub const MAX_TXN_CLIENTS: u32 = 64;

/// Lines per order, as in TPC-C/SSB orders.
pub const MIN_LINES_PER_ORDER: u32 = 1;
pub const MAX_LINES_PER_ORDER: u32 = 7;

/// The five SSB regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 SSB nations, five per region (index / 5 == region index).
pub const NATIONS: [&str; 25] = [
    "ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE", // AFRICA
    "ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES", // AMERICA
    "CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM", // ASIA
    "FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM", // EUROPE
    "EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA", // MIDDLE EAST
];

const MKT_SEGMENTS: [&str; 5] =
    ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];

const ORDER_PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

const SHIP_MODES: [&str; 7] =
    ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];

const COLORS: [&str; 16] = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate",
];

const TYPES: [&str; 6] = [
    "STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO",
];

const TYPE_MATERIALS: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

const CONTAINERS: [&str; 8] = [
    "SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP CASE",
    "JUMBO PKG",
];

/// A (possibly fractional) scale factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleFactor(pub f64);

impl ScaleFactor {
    fn scaled(&self, base: u64, min: u64) -> u64 {
        ((base as f64 * self.0).round() as u64).max(min)
    }

    /// LINEORDER row target (orders × lines average lands near this).
    pub fn lineorder_rows(&self) -> u64 {
        self.scaled(6_000_000, 100)
    }

    /// CUSTOMER rows.
    pub fn customers(&self) -> u64 {
        self.scaled(30_000, 50)
    }

    /// SUPPLIER rows.
    pub fn suppliers(&self) -> u64 {
        self.scaled(2_000, 10)
    }

    /// PART rows: `200,000 × (1 + ⌊log₂ SF⌋)`, scaled down linearly below
    /// SF 1.
    pub fn parts(&self) -> u64 {
        if self.0 >= 1.0 {
            200_000 * (1 + self.0.log2().floor() as u64)
        } else {
            self.scaled(200_000, 40)
        }
    }
}

/// City name: the nation's first 9 characters (space-padded) plus a digit,
/// e.g. `"UNITED KI1"` — the format SSB queries 3.3/3.4 match on.
pub fn city_name(nation: &str, suffix: u32) -> String {
    let mut prefix: String = nation.chars().take(9).collect();
    while prefix.len() < 9 {
        prefix.push(' ');
    }
    format!("{prefix}{}", suffix % 10)
}

/// Shared string pools so generated rows intern their categorical values.
struct Pools {
    regions: Vec<Arc<str>>,
    nations: Vec<Arc<str>>,
    cities: Vec<Arc<str>>,
    segments: Vec<Arc<str>>,
    priorities: Vec<Arc<str>>,
    ship_modes: Vec<Arc<str>>,
    mfgrs: Vec<Arc<str>>,
    categories: Vec<Arc<str>>,
    brands: Vec<Arc<str>>,
    colors: Vec<Arc<str>>,
    types: Vec<Arc<str>>,
    containers: Vec<Arc<str>>,
    shippriority: Arc<str>,
}

impl Pools {
    fn new() -> Self {
        let mfgrs: Vec<Arc<str>> =
            (1..=5).map(|m| Arc::from(format!("MFGR#{m}").as_str())).collect();
        let categories: Vec<Arc<str>> = (1..=5)
            .flat_map(|m| (1..=5).map(move |c| Arc::from(format!("MFGR#{m}{c}").as_str())))
            .collect();
        let brands: Vec<Arc<str>> = categories
            .iter()
            .flat_map(|cat| {
                (1..=40).map(move |b| Arc::from(format!("{cat}{b:02}").as_str()))
            })
            .collect();
        let types: Vec<Arc<str>> = TYPES
            .iter()
            .flat_map(|t| {
                TYPE_MATERIALS.iter().map(move |m| Arc::from(format!("{t} {m}").as_str()))
            })
            .collect();
        Pools {
            regions: REGIONS.iter().map(|s| Arc::from(*s)).collect(),
            nations: NATIONS.iter().map(|s| Arc::from(*s)).collect(),
            cities: NATIONS
                .iter()
                .flat_map(|n| (0..10).map(move |i| Arc::from(city_name(n, i).as_str())))
                .collect(),
            segments: MKT_SEGMENTS.iter().map(|s| Arc::from(*s)).collect(),
            priorities: ORDER_PRIORITIES.iter().map(|s| Arc::from(*s)).collect(),
            ship_modes: SHIP_MODES.iter().map(|s| Arc::from(*s)).collect(),
            mfgrs,
            categories,
            brands,
            colors: COLORS.iter().map(|s| Arc::from(*s)).collect(),
            types,
            containers: CONTAINERS.iter().map(|s| Arc::from(*s)).collect(),
            shippriority: Arc::from("0"),
        }
    }

    fn nation_of(&self, idx: usize) -> (&Arc<str>, &Arc<str>, &Arc<str>) {
        // (city template base handled separately) -> (nation, region)
        let nation = &self.nations[idx];
        let region = &self.regions[idx / 5];
        (nation, region, &self.cities[idx * 10])
    }
}

/// Key-domain metadata the transactional workload needs to generate
/// parameters (§5.2.1: "given a random customer name, part key, supplier
/// name, and day of order").
#[derive(Debug, Clone)]
pub struct DataProfile {
    pub scale: f64,
    pub customers: u32,
    pub suppliers: u32,
    pub parts: u32,
    /// Highest orderkey in the initial LINEORDER population.
    pub max_orderkey: u64,
    /// Part prices by partkey-1 (New Order computes EXTENDEDPRICE from the
    /// part's PRICE; carrying the price table here avoids a redundant read
    /// API on the engine — the transaction still reads the PART row).
    pub txn_clients: u32,
}

/// Fully generated initial database content.
pub struct GeneratedData {
    pub profile: DataProfile,
    pub customer: Vec<Row>,
    pub supplier: Vec<Row>,
    pub part: Vec<Row>,
    pub date: Vec<Row>,
    pub lineorder: Vec<Row>,
    pub history: Vec<Row>,
    pub freshness: Vec<Row>,
}

impl GeneratedData {
    /// The rows of `table`.
    pub fn rows(&self, table: TableId) -> &[Row] {
        match table {
            TableId::Customer => &self.customer,
            TableId::Supplier => &self.supplier,
            TableId::Part => &self.part,
            TableId::Date => &self.date,
            TableId::Lineorder => &self.lineorder,
            TableId::History => &self.history,
            TableId::Freshness => &self.freshness,
        }
    }

    /// Total generated rows.
    pub fn total_rows(&self) -> usize {
        TableId::ALL.iter().map(|&t| self.rows(t).len()).sum()
    }

    /// Approximate raw bytes (the `figures sizes` report).
    pub fn approx_bytes(&self) -> usize {
        TableId::ALL
            .iter()
            .flat_map(|&t| self.rows(t).iter())
            .map(|row| row.iter().map(|v| v.approx_bytes()).sum::<usize>())
            .sum()
    }

    /// Loads every table into an engine and finishes the load.
    pub fn load_into(&self, engine: &dyn hat_engine::HtapEngine) -> hat_common::Result<()> {
        for &table in &TableId::ALL {
            let mut it = self.rows(table).iter().map(Arc::clone);
            engine.load(table, &mut it)?;
        }
        engine.finish_load()
    }
}

/// Canonical customer name for a key, e.g. `"Customer#000000042"`.
pub fn customer_name(key: u32) -> String {
    format!("Customer#{key:09}")
}

/// Canonical supplier name for a key, e.g. `"Supplier#000000042"`.
pub fn supplier_name(key: u32) -> String {
    format!("Supplier#{key:09}")
}

/// Generates the full initial database for `scale`, deterministically from
/// `seed`.
pub fn generate(scale: ScaleFactor, seed: u64) -> GeneratedData {
    let pools = Pools::new();
    let mut rng = HatRng::derive(seed, 0xDA7A);

    let n_customers = scale.customers() as u32;
    let n_suppliers = scale.suppliers() as u32;
    let n_parts = scale.parts() as u32;

    // --- dimensions ------------------------------------------------------
    let customer: Vec<Row> = (1..=n_customers)
        .map(|ck| {
            let nidx = rng.index(25);
            let (nation, region, _) = pools.nation_of(nidx);
            let city = &pools.cities[nidx * 10 + rng.index(10)];
            row_from([
                Value::U32(ck),
                Value::from(customer_name(ck)),
                Value::from(format!("addr-{}", rng.range_u32(0, 999_999))),
                Value::Str(Arc::clone(city)),
                Value::Str(Arc::clone(nation)),
                Value::Str(Arc::clone(region)),
                Value::from(format!("{:02}-{:07}", 10 + nidx, rng.range_u32(0, 9_999_999))),
                Value::Str(Arc::clone(&pools.segments[rng.index(5)])),
                Value::U32(0), // PAYMENTCNT
            ])
        })
        .collect();

    let supplier: Vec<Row> = (1..=n_suppliers)
        .map(|sk| {
            let nidx = rng.index(25);
            let (nation, region, _) = pools.nation_of(nidx);
            let city = &pools.cities[nidx * 10 + rng.index(10)];
            row_from([
                Value::U32(sk),
                Value::from(supplier_name(sk)),
                Value::from(format!("addr-{}", rng.range_u32(0, 999_999))),
                Value::Str(Arc::clone(city)),
                Value::Str(Arc::clone(nation)),
                Value::Str(Arc::clone(region)),
                Value::from(format!("{:02}-{:07}", 10 + nidx, rng.range_u32(0, 9_999_999))),
                Value::Money(Money::ZERO), // YTD
            ])
        })
        .collect();

    let part: Vec<Row> = (1..=n_parts)
        .map(|pk| {
            let mfgr_idx = rng.index(5);
            let cat_idx = mfgr_idx * 5 + rng.index(5);
            let brand_idx = cat_idx * 40 + rng.index(40);
            let color = &pools.colors[rng.index(pools.colors.len())];
            row_from([
                Value::U32(pk),
                Value::from(format!("{color} part {pk}")),
                Value::Str(Arc::clone(&pools.mfgrs[mfgr_idx])),
                Value::Str(Arc::clone(&pools.categories[cat_idx])),
                Value::Str(Arc::clone(&pools.brands[brand_idx])),
                Value::Str(Arc::clone(color)),
                Value::Str(Arc::clone(&pools.types[rng.index(pools.types.len())])),
                Value::U32(rng.range_u32(1, 50)),
                Value::Str(Arc::clone(&pools.containers[rng.index(8)])),
                Value::Money(Money::from_cents(rng.range_u64(90, 200_000) as i64)),
            ])
        })
        .collect();

    let date: Vec<Row> = dates::all_date_keys().map(date_row).collect();

    // --- facts ------------------------------------------------------------
    let target_lines = scale.lineorder_rows();
    let mut lineorder = Vec::with_capacity(target_lines as usize + 8);
    let mut history = Vec::with_capacity(target_lines as usize / 4 + 8);
    let mut orderkey: u64 = 0;
    while (lineorder.len() as u64) < target_lines {
        orderkey += 1;
        let custkey = rng.range_u32(1, n_customers);
        let n_lines = rng.range_u32(MIN_LINES_PER_ORDER, MAX_LINES_PER_ORDER);
        let orderdate = random_date_key(&mut rng);
        let priority = &pools.priorities[rng.index(5)];
        let mut lines = Vec::with_capacity(n_lines as usize);
        let mut total = Money::ZERO;
        for line_no in 1..=n_lines {
            let partkey = rng.range_u32(1, n_parts);
            let price = part[(partkey - 1) as usize][hat_common::ids::part::PRICE]
                .as_money()
                .expect("typed");
            let quantity = rng.range_u32(1, 50);
            let extended = price * quantity as i64;
            total += extended;
            lines.push((line_no, partkey, quantity, extended));
        }
        for (line_no, partkey, quantity, extended) in lines {
            let suppkey = rng.range_u32(1, n_suppliers);
            let discount = rng.range_u32(0, 10);
            let tax = rng.range_u32(0, 8);
            let revenue = extended.pct(100 - discount as i64);
            let supplycost = extended.pct(60);
            let commitdate = dates::add_days(orderdate, rng.range_u32(30, 90));
            lineorder.push(row_from([
                Value::U64(orderkey),
                Value::U32(line_no),
                Value::U32(custkey),
                Value::U32(partkey),
                Value::U32(suppkey),
                Value::U32(orderdate),
                Value::Str(Arc::clone(priority)),
                Value::Str(Arc::clone(&pools.shippriority)),
                Value::U32(quantity),
                Value::Money(extended),
                Value::Money(total),
                Value::U32(discount),
                Value::Money(revenue),
                Value::Money(supplycost),
                Value::U32(tax),
                Value::U32(commitdate),
                Value::Str(Arc::clone(&pools.ship_modes[rng.index(7)])),
            ]));
        }
        // §5.1: HISTORY starts with one row per distinct ORDERKEY.
        history.push(row_from([
            Value::U64(orderkey),
            Value::U32(custkey),
            Value::Money(total),
        ]));
    }

    let freshness: Vec<Row> = (0..MAX_TXN_CLIENTS)
        .map(|client| row_from([Value::U32(client), Value::U64(0)]))
        .collect();

    GeneratedData {
        profile: DataProfile {
            scale: scale.0,
            customers: n_customers,
            suppliers: n_suppliers,
            parts: n_parts,
            max_orderkey: orderkey,
            txn_clients: MAX_TXN_CLIENTS,
        },
        customer,
        supplier,
        part,
        date,
        lineorder,
        history,
        freshness,
    }
}

/// A uniformly random date key from the fixed SSB range (§5.2.1).
pub fn random_date_key(rng: &mut HatRng) -> u32 {
    let ordinal = rng.range_u32(0, dates::NUM_DATES as u32 - 1);
    // Convert ordinal back to a key by walking years/months — cheap enough
    // for generation; transactions use the same helper.
    let mut year = dates::FIRST_YEAR;
    let mut remaining = ordinal;
    loop {
        let days = if dates::is_leap_year(year) { 366 } else { 365 };
        if remaining < days {
            break;
        }
        remaining -= days;
        year += 1;
    }
    let mut month = 1;
    loop {
        let days = dates::days_in_month(year, month);
        if remaining < days {
            break;
        }
        remaining -= days;
        month += 1;
    }
    year * 10000 + month * 100 + (remaining + 1)
}

/// Builds the full DATE dimension row for a date key.
pub fn date_row(key: u32) -> Row {
    let d = CalendarDate::from_key(key);
    row_from([
        Value::U32(key),
        Value::from(format!("{} {}, {}", d.month_name(), d.day, d.year)),
        Value::from(d.day_name()),
        Value::from(d.month_name()),
        Value::U32(d.year),
        Value::U32(d.yearmonthnum()),
        Value::from(d.yearmonth()),
        Value::U32(d.weekday() + 1),
        Value::U32(d.day),
        Value::U32(d.day_num_in_year()),
        Value::U32(d.month),
        Value::U32(d.week_num_in_year()),
        Value::from(d.selling_season()),
        Value::from(d.is_last_day_in_month()),
        Value::from(d.is_holiday()),
        Value::from(d.is_weekday()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::ids::{customer as c, lineorder as lo, part as p};
    use hat_common::value::validate_row;

    fn tiny() -> GeneratedData {
        generate(ScaleFactor(0.001), 42)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(ScaleFactor(0.001), 7);
        let b = generate(ScaleFactor(0.001), 7);
        assert_eq!(a.lineorder.len(), b.lineorder.len());
        for (x, y) in a.lineorder.iter().zip(&b.lineorder).take(100) {
            assert_eq!(x, y);
        }
        let c = generate(ScaleFactor(0.001), 8);
        assert_ne!(
            a.lineorder[0][lo::CUSTKEY], c.lineorder[0][lo::CUSTKEY],
            "different seeds should diverge quickly (this key, this row)"
        );
    }

    #[test]
    fn row_counts_follow_scaling() {
        let d = tiny();
        assert_eq!(d.customer.len() as u64, ScaleFactor(0.001).customers());
        assert_eq!(d.supplier.len() as u64, ScaleFactor(0.001).suppliers());
        assert_eq!(d.date.len(), dates::NUM_DATES);
        assert!(d.lineorder.len() as u64 >= ScaleFactor(0.001).lineorder_rows());
        assert_eq!(d.freshness.len() as u32, MAX_TXN_CLIENTS);
        // History is one row per distinct orderkey.
        assert_eq!(d.history.len() as u64, d.profile.max_orderkey);
        // Average lines per order ≈ 4 -> history ≈ 25% of lineorder (paper).
        let ratio = d.history.len() as f64 / d.lineorder.len() as f64;
        assert!((0.2..0.35).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn integer_scale_factors_match_ssb() {
        assert_eq!(ScaleFactor(1.0).customers(), 30_000);
        assert_eq!(ScaleFactor(1.0).suppliers(), 2_000);
        assert_eq!(ScaleFactor(1.0).parts(), 200_000);
        assert_eq!(ScaleFactor(1.0).lineorder_rows(), 6_000_000);
        assert_eq!(ScaleFactor(2.0).parts(), 400_000, "1 + log2(2)");
        assert_eq!(ScaleFactor(4.0).parts(), 600_000, "1 + log2(4)");
        assert_eq!(ScaleFactor(10.0).parts(), 800_000, "1 + floor(log2 10)");
    }

    #[test]
    fn all_rows_conform_to_schema() {
        let d = tiny();
        for &t in &TableId::ALL {
            for row in d.rows(t).iter().take(200) {
                validate_row(t, row).unwrap_or_else(|e| panic!("{t:?}: {e}"));
            }
        }
    }

    #[test]
    fn keys_are_dense_and_names_canonical() {
        let d = tiny();
        for (i, row) in d.customer.iter().enumerate() {
            assert_eq!(row[c::CUSTKEY].as_u32().unwrap() as usize, i + 1);
        }
        assert_eq!(d.customer[41][c::NAME].as_str().unwrap(), "Customer#000000042");
        assert_eq!(customer_name(1), "Customer#000000001");
        assert_eq!(supplier_name(7), "Supplier#000000007");
    }

    #[test]
    fn lineorder_money_arithmetic_consistent() {
        let d = tiny();
        for row in d.lineorder.iter().take(500) {
            let partkey = row[lo::PARTKEY].as_u32().unwrap();
            let price = d.part[(partkey - 1) as usize][p::PRICE].as_money().unwrap();
            let qty = row[lo::QUANTITY].as_u32().unwrap() as i64;
            let extended = row[lo::EXTENDEDPRICE].as_money().unwrap();
            assert_eq!(extended, price * qty);
            let discount = row[lo::DISCOUNT].as_u32().unwrap() as i64;
            assert_eq!(row[lo::REVENUE].as_money().unwrap(), extended.pct(100 - discount));
            assert!((0..=10).contains(&discount));
        }
    }

    #[test]
    fn orderdates_within_ssb_calendar() {
        let d = tiny();
        for row in d.lineorder.iter().take(500) {
            let od = row[lo::ORDERDATE].as_u32().unwrap();
            assert!((dates::FIRST_DATE..=dates::LAST_DATE).contains(&od));
            let cd = row[lo::COMMITDATE].as_u32().unwrap();
            assert!(cd >= od, "commit date after order date");
            assert!(cd <= dates::LAST_DATE);
        }
    }

    #[test]
    fn random_date_key_roundtrip_is_valid() {
        let mut rng = HatRng::seeded(3);
        for _ in 0..2000 {
            let key = random_date_key(&mut rng);
            let d = CalendarDate::from_key(key);
            assert!((1..=12).contains(&d.month), "{key}");
            assert!(d.day >= 1 && d.day <= dates::days_in_month(d.year, d.month), "{key}");
        }
    }

    #[test]
    fn city_names_match_ssb_format() {
        assert_eq!(city_name("UNITED KINGDOM", 1), "UNITED KI1");
        assert_eq!(city_name("UNITED KINGDOM", 5), "UNITED KI5");
        assert_eq!(city_name("PERU", 3), "PERU     3");
        assert_eq!(city_name("CHINA", 12), "CHINA    2", "suffix mod 10");
    }

    #[test]
    fn cities_in_data_derive_from_nations() {
        let d = tiny();
        for row in d.customer.iter().take(50) {
            let nation = row[c::NATION].as_str().unwrap();
            let city = row[c::CITY].as_str().unwrap();
            assert!(city.starts_with(city_name(nation, 0).trim_end_matches('0')));
        }
    }

    #[test]
    fn string_values_are_interned() {
        let d = tiny();
        // Two customers in the same region share the same Arc.
        let mut by_region: std::collections::HashMap<&str, *const u8> =
            std::collections::HashMap::new();
        let mut shared = false;
        for row in &d.customer {
            if let Value::Str(s) = &row[c::REGION] {
                let ptr = s.as_ptr();
                if let Some(&prev) = by_region.get(s.as_ref()) {
                    if std::ptr::eq(prev, ptr) {
                        shared = true;
                        break;
                    }
                }
                by_region.insert(s.as_ref(), ptr);
            }
        }
        assert!(shared || d.customer.len() < 6, "region strings interned");
    }

    #[test]
    fn approx_bytes_nonzero_and_scales() {
        let small = generate(ScaleFactor(0.0005), 1);
        let large = generate(ScaleFactor(0.002), 1);
        assert!(large.approx_bytes() > small.approx_bytes());
        assert!(small.total_rows() > 0);
    }
}
