//! The machine-readable run artifact.
//!
//! Every benchmark run can emit one versioned JSON document carrying the
//! run configuration, each measured `(τ, α)` point's metric snapshots
//! (window + cumulative), the fixed-cadence time series, and the raw
//! freshness samples — everything `report`/`figures` consume, without
//! reaching into harness internals. `hatcli --metrics-out <path>` writes
//! it; [`RunArtifact::parse`] + [`RunArtifact::validate`] read it back
//! (the CI smoke check does exactly that).
//!
//! Schema stability: `schema_version` gates the layout. Consumers must
//! reject versions they do not understand rather than guess.

use hat_common::telemetry::json::Json;
use hat_common::telemetry::MetricsSnapshot;

use crate::harness::{PointMeasurement, SamplePhase, TimeSeriesSample};

/// Version of the artifact layout produced by this build.
/// v2 added `live_versions` to every time-series sample; v3 added the
/// storage-health fields `health` and `shed`; v4 added the overload
/// fields `shed_overload` and `offered` (splitting sheds by cause:
/// `shed` is storage-degradation, `shed_overload` is traffic) plus the
/// `openloop.*` counters and sojourn histogram inside point metrics; v5
/// added the vectorized-scan counters (`scan.batches`,
/// `scan.rows_pruned_zonemap`, `scan.rows_filtered_vectorized`) and the
/// compression-ratio gauges (`colstore.bytes_encoded`,
/// `colstore.bytes_decoded_equiv`) inside point metrics; v6 added the
/// elastic-scheduler allocation trace (`t_cores`/`a_cores` on every
/// time-series sample — zero on static runs) and the `sched.*`
/// counters/gauges inside point metrics.
pub const SCHEMA_VERSION: u64 = 6;

/// The run configuration echoed into the artifact, so a result file is
/// self-describing (which engine, scale, seed, and phase lengths
/// produced these numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    pub engine: String,
    pub scale_factor: f64,
    pub seed: u64,
    pub warmup_secs: f64,
    pub measure_secs: f64,
    pub sample_every_secs: f64,
    pub repeats: u32,
}

impl RunConfig {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("engine".into(), Json::Str(self.engine.clone())),
            ("scale_factor".into(), Json::from_f64(self.scale_factor)),
            ("seed".into(), Json::from_u64(self.seed)),
            ("warmup_secs".into(), Json::from_f64(self.warmup_secs)),
            ("measure_secs".into(), Json::from_f64(self.measure_secs)),
            ("sample_every_secs".into(), Json::from_f64(self.sample_every_secs)),
            ("repeats".into(), Json::from_u64(self.repeats as u64)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let f = |k: &str| {
            j.get(k).and_then(Json::as_f64).ok_or_else(|| format!("config: missing {k}"))
        };
        Ok(RunConfig {
            engine: j
                .get("engine")
                .and_then(Json::as_str)
                .ok_or("config: missing engine")?
                .to_string(),
            scale_factor: f("scale_factor")?,
            seed: j.get("seed").and_then(Json::as_u64).ok_or("config: missing seed")?,
            warmup_secs: f("warmup_secs")?,
            measure_secs: f("measure_secs")?,
            sample_every_secs: f("sample_every_secs")?,
            repeats: f("repeats")? as u32,
        })
    }
}

fn sample_to_json(s: &TimeSeriesSample) -> Json {
    Json::Obj(vec![
        ("t_secs".into(), Json::from_f64(s.t_secs)),
        ("phase".into(), Json::Str(s.phase.label().to_string())),
        ("run".into(), Json::from_u64(s.run as u64)),
        ("tps".into(), Json::from_f64(s.tps)),
        ("qps".into(), Json::from_f64(s.qps)),
        ("backlog".into(), Json::from_u64(s.backlog)),
        ("delta_rows".into(), Json::from_u64(s.delta_rows)),
        ("live_versions".into(), Json::from_u64(s.live_versions)),
        ("freshness_lag".into(), Json::from_f64(s.freshness_lag)),
        ("health".into(), Json::from_u64(s.health)),
        ("shed".into(), Json::from_u64(s.shed)),
        ("shed_overload".into(), Json::from_u64(s.shed_overload)),
        ("offered".into(), Json::from_u64(s.offered)),
        ("t_cores".into(), Json::from_u64(s.t_cores as u64)),
        ("a_cores".into(), Json::from_u64(s.a_cores as u64)),
    ])
}

fn sample_from_json(j: &Json) -> Result<TimeSeriesSample, String> {
    let f = |k: &str| {
        j.get(k).and_then(Json::as_f64).ok_or_else(|| format!("sample: missing {k}"))
    };
    let u = |k: &str| {
        j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("sample: missing {k}"))
    };
    let phase = j
        .get("phase")
        .and_then(Json::as_str)
        .and_then(SamplePhase::from_label)
        .ok_or("sample: bad phase")?;
    Ok(TimeSeriesSample {
        t_secs: f("t_secs")?,
        phase,
        run: u("run")? as u32,
        tps: f("tps")?,
        qps: f("qps")?,
        backlog: u("backlog")?,
        delta_rows: u("delta_rows")?,
        live_versions: u("live_versions")?,
        freshness_lag: f("freshness_lag")?,
        health: u("health")?,
        shed: u("shed")?,
        shed_overload: u("shed_overload")?,
        offered: u("offered")?,
        t_cores: u("t_cores")? as u32,
        a_cores: u("a_cores")? as u32,
    })
}

/// Serializes one measured point.
pub fn point_to_json(m: &PointMeasurement) -> Json {
    Json::Obj(vec![
        ("t_clients".into(), Json::from_u64(m.t_clients as u64)),
        ("a_clients".into(), Json::from_u64(m.a_clients as u64)),
        ("tps".into(), Json::from_f64(m.tps)),
        ("qps".into(), Json::from_f64(m.qps)),
        ("measured_secs".into(), Json::from_f64(m.measured_secs)),
        (
            "freshness".into(),
            Json::Arr(m.freshness.iter().map(|&s| Json::from_f64(s)).collect()),
        ),
        ("metrics".into(), m.metrics.to_json()),
        ("metrics_end".into(), m.metrics_end.to_json()),
        ("timeseries".into(), Json::Arr(m.timeseries.iter().map(sample_to_json).collect())),
    ])
}

/// Deserializes one measured point.
pub fn point_from_json(j: &Json) -> Result<PointMeasurement, String> {
    let f = |k: &str| {
        j.get(k).and_then(Json::as_f64).ok_or_else(|| format!("point: missing {k}"))
    };
    let u = |k: &str| {
        j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("point: missing {k}"))
    };
    let freshness = j
        .get("freshness")
        .and_then(Json::as_arr)
        .ok_or("point: missing freshness")?
        .iter()
        .map(|v| v.as_f64().ok_or("point: bad freshness sample".to_string()))
        .collect::<Result<Vec<f64>, String>>()?;
    let timeseries = j
        .get("timeseries")
        .and_then(Json::as_arr)
        .ok_or("point: missing timeseries")?
        .iter()
        .map(sample_from_json)
        .collect::<Result<Vec<_>, String>>()?;
    Ok(PointMeasurement {
        t_clients: u("t_clients")? as u32,
        a_clients: u("a_clients")? as u32,
        tps: f("tps")?,
        qps: f("qps")?,
        metrics: MetricsSnapshot::from_json(
            j.get("metrics").ok_or("point: missing metrics")?,
        )?,
        metrics_end: MetricsSnapshot::from_json(
            j.get("metrics_end").ok_or("point: missing metrics_end")?,
        )?,
        timeseries,
        freshness,
        measured_secs: f("measured_secs")?,
    })
}

/// A complete, versioned benchmark result document.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    pub schema_version: u64,
    pub config: RunConfig,
    pub points: Vec<PointMeasurement>,
}

impl RunArtifact {
    /// An empty artifact at the current schema version.
    pub fn new(config: RunConfig) -> Self {
        RunArtifact { schema_version: SCHEMA_VERSION, config, points: Vec::new() }
    }

    pub fn push_point(&mut self, m: PointMeasurement) {
        self.points.push(m);
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::from_u64(self.schema_version)),
            ("config".into(), self.config.to_json()),
            ("points".into(), Json::Arr(self.points.iter().map(point_to_json).collect())),
        ])
    }

    /// Pretty-printed JSON document (what `--metrics-out` writes).
    pub fn dump(&self) -> String {
        self.to_json().pretty()
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        let schema_version = j
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("artifact: missing schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "artifact: schema_version {schema_version} unsupported \
                 (this build reads {SCHEMA_VERSION})"
            ));
        }
        let config = RunConfig::from_json(j.get("config").ok_or("artifact: missing config")?)?;
        let points = j
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("artifact: missing points")?
            .iter()
            .map(point_from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RunArtifact { schema_version, config, points })
    }

    /// Parses a document from its JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Structural checks beyond parsing: at least one point, and every
    /// point that ran clients carries a non-empty measurement-phase time
    /// series and window metrics. (The `(0, 0)` origin point of a
    /// frontier is legitimately empty.)
    pub fn validate(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("artifact: no points".into());
        }
        for m in &self.points {
            if m.t_clients == 0 && m.a_clients == 0 {
                continue;
            }
            let tag = format!("point ({}, {})", m.t_clients, m.a_clients);
            let measure_samples =
                m.timeseries.iter().filter(|s| s.phase == SamplePhase::Measure).count();
            if measure_samples == 0 {
                return Err(format!("{tag}: no measurement-phase samples"));
            }
            if m.metrics.counters().is_empty() {
                return Err(format!("{tag}: empty window metrics"));
            }
        }
        Ok(())
    }

    /// Writes the pretty JSON document to `path`.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.dump())
    }

    /// Reads and parses a document from `path`.
    pub fn read_from(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// CSV of the per-point summary: one row per measured point.
    pub fn points_csv(&self) -> String {
        let mut out = String::from(
            "t_clients,a_clients,tps,qps,committed,queries,aborts,backlog_hwm\n",
        );
        for m in &self.points {
            out.push_str(&format!(
                "{},{},{:.2},{:.3},{},{},{},{}\n",
                m.t_clients,
                m.a_clients,
                m.tps,
                m.qps,
                m.committed(),
                m.queries(),
                m.aborts(),
                m.backlog_hwm()
            ));
        }
        out
    }

    /// CSV of the full time series: one row per sample across all points.
    pub fn timeseries_csv(&self) -> String {
        let mut out = String::from(
            "t_clients,a_clients,run,phase,t_secs,tps,qps,backlog,delta_rows,\
             live_versions,freshness_lag,health,shed,shed_overload,offered,\
             t_cores,a_cores\n",
        );
        for m in &self.points {
            for s in &m.timeseries {
                out.push_str(&format!(
                    "{},{},{},{},{:.6},{:.2},{:.3},{},{},{},{:.6},{},{},{},{},{},{}\n",
                    m.t_clients,
                    m.a_clients,
                    s.run,
                    s.phase.label(),
                    s.t_secs,
                    s.tps,
                    s.qps,
                    s.backlog,
                    s.delta_rows,
                    s.live_versions,
                    s.freshness_lag,
                    s.health,
                    s.shed,
                    s.shed_overload,
                    s.offered,
                    s.t_cores,
                    s.a_cores
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::telemetry::{names, HistogramSnapshot};

    fn config() -> RunConfig {
        RunConfig {
            engine: "shared".into(),
            scale_factor: 0.001,
            seed: 99,
            warmup_secs: 0.03,
            measure_secs: 0.12,
            sample_every_secs: 0.005,
            repeats: 1,
        }
    }

    fn synthetic_point() -> PointMeasurement {
        let mut m = PointMeasurement::zero(2, 1);
        m.tps = 123.5;
        m.qps = 7.25;
        m.measured_secs = 0.12;
        m.freshness = vec![0.0, 0.004];
        m.metrics.set_counter(names::HARNESS_COMMITTED, 17);
        m.metrics.set_gauge(names::HARNESS_BACKLOG_HWM, 3);
        m.metrics.set_histogram(
            "latency.txn.payment",
            HistogramSnapshot::from_values(&[1_000, 2_000, 40_000]),
        );
        m.metrics_end.set_counter(names::WAL_FSYNCS, 12);
        m.timeseries = vec![
            TimeSeriesSample {
                t_secs: 0.01,
                phase: SamplePhase::Warmup,
                run: 0,
                tps: 90.0,
                qps: 5.0,
                backlog: 1,
                delta_rows: 0,
                live_versions: 100,
                freshness_lag: 0.0,
                health: 0,
                shed: 0,
                shed_overload: 0,
                offered: 95,
                t_cores: 0,
                a_cores: 0,
            },
            TimeSeriesSample {
                t_secs: 0.05,
                phase: SamplePhase::Measure,
                run: 0,
                tps: 120.0,
                qps: 8.0,
                backlog: 3,
                delta_rows: 2,
                live_versions: 104,
                freshness_lag: 0.002,
                health: 1,
                shed: 2,
                shed_overload: 4,
                offered: 130,
                t_cores: 3,
                a_cores: 1,
            },
        ];
        m
    }

    #[test]
    fn artifact_roundtrips_through_text() {
        let mut art = RunArtifact::new(config());
        art.push_point(synthetic_point());
        let text = art.dump();
        let back = RunArtifact::parse(&text).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.config, art.config);
        assert_eq!(back.points.len(), 1);
        let (a, b) = (&art.points[0], &back.points[0]);
        assert_eq!(a.t_clients, b.t_clients);
        assert_eq!(a.tps, b.tps);
        assert_eq!(a.freshness, b.freshness);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics_end, b.metrics_end);
        assert_eq!(a.timeseries, b.timeseries);
        assert_eq!(a.committed(), 17);
        assert_eq!(b.committed(), 17);
    }

    #[test]
    fn validate_accepts_good_and_rejects_empty() {
        let mut art = RunArtifact::new(config());
        assert!(art.validate().is_err(), "no points");
        art.push_point(synthetic_point());
        art.validate().unwrap();
        // Origin points are allowed to be empty.
        art.push_point(PointMeasurement::zero(0, 0));
        art.validate().unwrap();
        // A real point without measurement samples is rejected.
        art.push_point(PointMeasurement::zero(1, 0));
        assert!(art.validate().unwrap_err().contains("no measurement-phase samples"));
    }

    #[test]
    fn unsupported_schema_version_is_rejected() {
        let mut art = RunArtifact::new(config());
        art.push_point(synthetic_point());
        let text = art.dump().replace("\"schema_version\": 6", "\"schema_version\": 999");
        let err = RunArtifact::parse(&text).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn csv_helpers_cover_points_and_series() {
        let mut art = RunArtifact::new(config());
        art.push_point(synthetic_point());
        let pcsv = art.points_csv();
        assert!(pcsv.starts_with("t_clients,"));
        assert!(pcsv.contains("2,1,123.50,7.250,17,"));
        let tcsv = art.timeseries_csv();
        assert_eq!(tcsv.lines().count(), 3, "header + two samples");
        assert!(tcsv.contains("measure"));
        assert!(tcsv.contains("warmup"));
    }
}
