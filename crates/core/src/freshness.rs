//! Freshness measurement (§4).
//!
//! The theoretical score of an analytical query is
//! `f_Aq = max(0, ts_Aq − tfns_Aq)` — its start time minus the commit time
//! of the *first transaction it did not see*. The practical method (§4.2)
//! identifies unseen transactions through the per-client `FRESHNESS` rows
//! every query returns, and takes all time measurements on the client side:
//! a [`CommitRegistry`] records each transaction's commit wall-time as
//! observed by its client, and each query's score is computed from its own
//! observed start time.

use hat_common::clock::Nanos;
use parking_lot::Mutex;

/// Records, per transactional client, the wall-clock commit time of each
/// sequence number.
pub struct CommitRegistry {
    clients: Vec<Mutex<ClientLog>>,
}

struct ClientLog {
    /// First sequence number this registry covers (continuation runs start
    /// past the numbers already in the FRESHNESS table).
    base: u64,
    times: Vec<Nanos>,
}

impl CommitRegistry {
    /// A registry for `clients` transactional clients whose next sequence
    /// numbers are `bases[c]` (1 for a freshly reset database).
    pub fn new(bases: &[u64]) -> Self {
        CommitRegistry {
            clients: bases
                .iter()
                .map(|&b| Mutex::new(ClientLog { base: b, times: Vec::new() }))
                .collect(),
        }
    }

    /// Records that client `client`'s transaction `txnnum` committed (as
    /// observed by the client) at `at`. Sequence numbers must arrive
    /// densely in order per client.
    pub fn record(&self, client: u32, txnnum: u64, at: Nanos) {
        let mut log = self.clients[client as usize].lock();
        debug_assert_eq!(txnnum, log.base + log.times.len() as u64);
        log.times.push(at);
    }

    /// The commit time of `(client, txnnum)`, if recorded.
    pub fn get(&self, client: u32, txnnum: u64) -> Option<Nanos> {
        let log = self.clients[client as usize].lock();
        if txnnum < log.base {
            return None; // predates this run; treated as unknown
        }
        log.times.get((txnnum - log.base) as usize).copied()
    }

    /// Number of commits recorded for `client`.
    pub fn count(&self, client: u32) -> usize {
        self.clients[client as usize].lock().times.len()
    }
}

/// One measured freshness score, in seconds.
pub type FreshnessSample = f64;

/// Computes a query's freshness score (seconds).
///
/// `query_start` is the client-observed start time; `seen` is the
/// freshness vector the query returned (`(client, highest seen txnnum)`).
/// For each client the first unseen transaction is `seen + 1`; the score
/// is the age of the *earliest-committed* unseen transaction, or zero if
/// every transaction committed before the query started was seen.
pub fn score_query(
    query_start: Nanos,
    seen: &[(u32, u64)],
    registry: &CommitRegistry,
) -> FreshnessSample {
    let mut earliest_unseen: Option<Nanos> = None;
    for &(client, seen_txn) in seen {
        if client as usize >= registry.clients.len() {
            continue;
        }
        if let Some(tc) = registry.get(client, seen_txn + 1) {
            if tc < query_start {
                earliest_unseen =
                    Some(earliest_unseen.map_or(tc, |cur| cur.min(tc)));
            }
        }
    }
    match earliest_unseen {
        Some(tc) => (query_start - tc) as f64 / 1e9,
        None => 0.0,
    }
}

/// Aggregated freshness statistics over a set of samples (§4.1 defines the
/// system score as an aggregation `f_agg`; the paper reports the 99th
/// percentile).
#[derive(Debug, Clone, Default)]
pub struct FreshnessAgg {
    pub count: usize,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
    /// Fraction of queries with (near-)zero staleness (< 1 ms).
    pub zero_fraction: f64,
}

impl FreshnessAgg {
    /// Aggregates raw samples.
    pub fn from_samples(samples: &[FreshnessSample]) -> Self {
        if samples.is_empty() {
            return FreshnessAgg::default();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN scores"));
        let pct = |p: f64| -> f64 {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        FreshnessAgg {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *sorted.last().expect("non-empty"),
            zero_fraction: sorted.iter().filter(|&&s| s < 1e-3).count() as f64
                / sorted.len() as f64,
        }
    }
}

/// Empirical CDF points `(seconds, cumulative fraction)` for plotting
/// (Figure 8b).
pub fn cdf(samples: &[FreshnessSample]) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN scores"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry2() -> CommitRegistry {
        CommitRegistry::new(&[1, 1])
    }

    #[test]
    fn registry_records_and_retrieves() {
        let r = registry2();
        r.record(0, 1, 100);
        r.record(0, 2, 250);
        r.record(1, 1, 180);
        assert_eq!(r.get(0, 1), Some(100));
        assert_eq!(r.get(0, 2), Some(250));
        assert_eq!(r.get(0, 3), None);
        assert_eq!(r.get(1, 1), Some(180));
        assert_eq!(r.count(0), 2);
    }

    #[test]
    fn registry_with_nonzero_base() {
        let r = CommitRegistry::new(&[5]);
        r.record(0, 5, 42);
        assert_eq!(r.get(0, 5), Some(42));
        assert_eq!(r.get(0, 4), None, "predates the run");
    }

    #[test]
    fn fresh_query_scores_zero() {
        let r = registry2();
        r.record(0, 1, 100);
        // Query started at 200 and saw txn 1 — nothing unseen.
        assert_eq!(score_query(200, &[(0, 1), (1, 0)], &r), 0.0);
    }

    #[test]
    fn stale_query_scores_age_of_first_unseen() {
        let r = registry2();
        r.record(0, 1, 100);
        r.record(0, 2, 1_000_000_100); // ~1s later
        // Query started 2s in, saw only txn 0 of client 0: first unseen is
        // txn 1 committed at t=100 -> staleness = (2e9 - 100) ns.
        let f = score_query(2_000_000_000, &[(0, 0)], &r);
        assert!((f - (2_000_000_000.0 - 100.0) / 1e9).abs() < 1e-9);
    }

    #[test]
    fn unseen_but_post_start_commits_do_not_count() {
        let r = registry2();
        r.record(0, 1, 5_000);
        // Query started at 1_000, before txn 1 committed: up-to-date.
        assert_eq!(score_query(1_000, &[(0, 0)], &r), 0.0);
    }

    #[test]
    fn earliest_unseen_across_clients_wins() {
        let r = registry2();
        r.record(0, 1, 3_000_000_000);
        r.record(1, 1, 1_000_000_000);
        // Both unseen; client 1's commit is earlier -> larger staleness.
        let f = score_query(4_000_000_000, &[(0, 0), (1, 0)], &r);
        assert!((f - 3.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_clients_are_ignored() {
        let r = registry2();
        let f = score_query(100, &[(9, 0)], &r);
        assert_eq!(f, 0.0);
    }

    #[test]
    fn aggregation_statistics() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let agg = FreshnessAgg::from_samples(&samples);
        assert_eq!(agg.count, 100);
        assert!((agg.mean - 0.505).abs() < 1e-9);
        assert!((agg.p50 - 0.50).abs() < 0.02);
        assert!((agg.p99 - 0.99).abs() < 0.02);
        assert_eq!(agg.max, 1.0);
        assert_eq!(agg.zero_fraction, 0.0);
    }

    #[test]
    fn aggregation_of_zeroes() {
        let agg = FreshnessAgg::from_samples(&[0.0; 50]);
        assert_eq!(agg.p99, 0.0);
        assert_eq!(agg.zero_fraction, 1.0);
        let empty = FreshnessAgg::from_samples(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let samples = [0.5, 0.1, 0.9, 0.1];
        let points = cdf(&samples);
        assert_eq!(points.len(), 4);
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(points.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!(cdf(&[]).is_empty());
    }
}
