//! Rendering of benchmark results: CSV series for plotting and ASCII
//! charts for terminal inspection.
//!
//! The paper communicates its metrics through three plot families — the
//! fixed-T lines, the fixed-A lines, and the throughput frontier with its
//! proportional-line and bounding-box annotations, plus freshness CDFs.
//! Every figure harness in `hat-bench` emits the CSV from here (one file
//! per panel, ready for any plotting tool) and prints the ASCII chart.

use std::fmt::Write as _;

use hat_common::telemetry::{names, MetricsSnapshot};

use crate::freshness::FreshnessAgg;
use crate::frontier::{classify, FixedKind, Frontier, GridGraph, ShardSweepEntry};

/// CSV of a frontier: `t_clients,a_clients,tps,qps`.
pub fn frontier_csv(frontier: &Frontier) -> String {
    let mut out = String::from("t_clients,a_clients,tps,qps\n");
    for p in &frontier.points {
        let _ = writeln!(out, "{},{},{:.2},{:.3}", p.t_clients, p.a_clients, p.t, p.a);
    }
    out
}

/// CSV of a grid graph: `kind,fixed_clients,t_clients,a_clients,tps,qps`.
pub fn grid_csv(grid: &GridGraph) -> String {
    let mut out = String::from("kind,fixed_clients,t_clients,a_clients,tps,qps\n");
    for line in grid.fixed_t.iter().chain(&grid.fixed_a) {
        let kind = match line.kind {
            FixedKind::FixedT => "fixed-T",
            FixedKind::FixedA => "fixed-A",
        };
        for p in &line.points {
            let _ = writeln!(
                out,
                "{kind},{},{},{},{:.2},{:.3}",
                line.fixed_clients, p.t_clients, p.a_clients, p.t, p.a
            );
        }
    }
    out
}

/// CSV of an empirical CDF: `seconds,fraction`.
pub fn cdf_csv(points: &[(f64, f64)]) -> String {
    let mut out = String::from("seconds,fraction\n");
    for (s, f) in points {
        let _ = writeln!(out, "{s:.6},{f:.6}");
    }
    out
}

/// A named series for ASCII plotting.
pub struct Series<'a> {
    pub name: &'a str,
    pub marker: char,
    pub points: Vec<(f64, f64)>,
}

/// Renders series into a terminal scatter plot with axes.
pub fn ascii_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series<'_>],
    width: usize,
    height: usize,
) -> String {
    let width = width.max(16);
    let height = height.max(8);
    let x_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let y_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0_f64, f64::max)
        .max(1e-12);

    let mut canvas = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let col = ((x / x_max) * (width - 1) as f64).round() as usize;
            let row = ((y / y_max) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row;
            let cell = &mut canvas[row.min(height - 1)][col.min(width - 1)];
            // First series wins collisions except over blanks.
            if *cell == ' ' {
                *cell = s.marker;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{y_label} (max {y_max:.2})");
    for row in canvas {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "|{line}");
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    let _ = writeln!(out, " {x_label} (max {x_max:.2})");
    for s in series {
        let _ = writeln!(out, "   {} = {}", s.marker, s.name);
    }
    out
}

/// Renders a frontier chart with its proportional line annotation.
pub fn frontier_ascii(name: &str, frontier: &Frontier) -> String {
    let prop: Vec<(f64, f64)> = (0..=20)
        .map(|i| {
            let t = frontier.x_t * i as f64 / 20.0;
            (t, frontier.proportional_at(t))
        })
        .collect();
    let pts: Vec<(f64, f64)> = frontier.points.iter().map(|p| (p.t, p.a)).collect();
    ascii_plot(
        &format!("throughput frontier — {name}"),
        "T throughput (tps)",
        "A throughput (qps)",
        &[
            Series { name: "frontier", marker: 'o', points: pts },
            Series { name: "proportional line", marker: '.', points: prop },
        ],
        64,
        20,
    )
}

/// One-paragraph interpretation of a frontier + freshness result, in the
/// paper's vocabulary (§6.7: HATtrick "combines the above information into
/// a few simple metrics and presents them in a user friendly way").
pub fn summary(name: &str, frontier: &Frontier, freshness: &FreshnessAgg) -> String {
    let shape = classify(frontier);
    let mut out = String::new();
    let _ = writeln!(out, "== {name} ==");
    let _ = writeln!(
        out,
        "  X_T = {:.1} tps, X_A = {:.2} qps, frontier area ratio = {:.3}",
        frontier.x_t,
        frontier.x_a,
        frontier.area_ratio()
    );
    let _ = writeln!(out, "  shape: {}", shape.describe());
    if freshness.count > 0 {
        let _ = writeln!(
            out,
            "  freshness: mean {:.4}s, p99 {:.4}s, max {:.4}s, {:.0}% fresh",
            freshness.mean,
            freshness.p99,
            freshness.max,
            freshness.zero_fraction * 100.0
        );
    } else {
        let _ = writeln!(out, "  freshness: no samples");
    }
    out
}

/// The shard-scaling table of a multi-core sweep: pure-workload extremes
/// per shard count and T-axis speedup over the sweep's first entry.
pub fn shard_scaling(entries: &[ShardSweepEntry]) -> String {
    let mut out = String::from("shards  X_T(tps)    X_A(qps)  T-speedup\n");
    let Some(base) = entries.first() else { return out };
    for e in entries {
        let _ = writeln!(
            out,
            "{:>6}  {:>8.1}  {:>10.2}  {:>8.2}x",
            e.shards,
            e.grid.x_t,
            e.grid.x_a,
            e.t_speedup_over(base)
        );
    }
    out
}

/// One-line resilience accounting for a measured point: how the clients
/// coped with retryable failures, and how far replication fell behind.
/// Takes the point's *window* snapshot ([`PointMeasurement::metrics`]:
/// `harness.*` counters). Fault-free runs (all counters zero) report
/// "clean".
///
/// [`PointMeasurement::metrics`]: crate::harness::PointMeasurement
pub fn resilience_line(m: &MetricsSnapshot) -> String {
    let aborts = m.counter(names::HARNESS_ABORTS);
    let retries = m.counter(names::HARNESS_RETRIES);
    let timeouts = m.counter(names::HARNESS_TIMEOUTS);
    let gave_up = m.counter(names::HARNESS_GAVE_UP);
    let query_retries = m.counter(names::HARNESS_QUERY_RETRIES);
    let backlog_hwm = m.gauge(names::HARNESS_BACKLOG_HWM);
    if aborts == 0
        && retries == 0
        && timeouts == 0
        && gave_up == 0
        && query_retries == 0
        && backlog_hwm == 0
    {
        return "  resilience: clean (no retryable failures, backlog 0)".to_string();
    }
    format!(
        "  resilience: {aborts} aborts, {retries} retries, {timeouts} in-doubt commits, \
         {gave_up} gave up, {query_retries} query retries, backlog hwm {backlog_hwm}"
    )
}

/// One-line durability accounting: how many flushes the durability layer
/// issued, how well group commit batched concurrent commits, and what (if
/// anything) crash recovery replayed at startup. Takes the *cumulative*
/// snapshot ([`PointMeasurement::metrics_end`]: `wal.*` counters run
/// since engine start). Returns `None` when durability is off (nothing
/// to report).
///
/// [`PointMeasurement::metrics_end`]: crate::harness::PointMeasurement
pub fn durability_line(m: &MetricsSnapshot) -> Option<String> {
    let fsyncs = m.counter(names::WAL_FSYNCS);
    let replayed = m.counter(names::WAL_RECOVERY_REPLAYED);
    let torn = m.counter(names::WAL_TORN_TAILS);
    if fsyncs == 0 && replayed == 0 && torn == 0 {
        return None;
    }
    let (p50, p99) = m
        .histogram(names::WAL_GROUP_COMMIT_BATCH)
        .map_or((0.0, 0.0), |h| {
            (h.quantile(0.50) as f64, h.quantile(0.99) as f64)
        });
    let mut line = format!(
        "  durability: {fsyncs} fsyncs, group-commit batch p50 {p50:.1} / p99 {p99:.1}"
    );
    if replayed > 0 || torn > 0 {
        line.push_str(&format!(
            ", recovered {replayed} records ({torn} torn tails truncated)"
        ));
    }
    Some(line)
}

/// One-line storage-degradation accounting: how many disk faults the WAL
/// absorbed, how many commits were shed with retryable errors, how long
/// the engine sat below `Healthy`, and whether any segment is still
/// quarantined. Takes the *cumulative* snapshot
/// ([`PointMeasurement::metrics_end`]: `wal.*`/`health.*`/`disk.*`
/// counters run since engine start). Returns `None` for fault-free runs
/// (all counters zero and the health gauge at `Healthy`), so clean
/// reports stay clean.
///
/// [`PointMeasurement::metrics_end`]: crate::harness::PointMeasurement
pub fn degradation_line(m: &MetricsSnapshot) -> Option<String> {
    let faults = m.counter(names::DISK_FAULTS);
    let shed = m.counter(names::WAL_SHED_COMMITS);
    let breaker = m.counter(names::ADMIT_TXN_SHED_BREAKER)
        + m.counter(names::ADMIT_QUERY_SHED_BREAKER);
    let overload = m.counter(names::ADMIT_TXN_SHED) + m.counter(names::ADMIT_QUERY_SHED);
    let degraded_ticks = m.counter(names::HEALTH_DEGRADED_TICKS);
    let scrub_passes = m.counter(names::WAL_SCRUB_PASSES);
    let quarantined = m.counter(names::WAL_QUARANTINED);
    let health = m.gauge(names::HEALTH_STATE);
    if faults == 0
        && shed == 0
        && breaker == 0
        && degraded_ticks == 0
        && quarantined == 0
        && health == 0
    {
        return None;
    }
    let state = match health {
        0 => "healthy",
        1 => "degraded",
        _ => "recovering",
    };
    // Sheds split by cause: `wal.shed_commits` is the storage layer
    // refusing work on a sick device, the breaker is admission refusing
    // work *because* of that sickness; pure-overload sheds are a traffic
    // phenomenon and only get a cross-reference here so the causes are
    // never conflated.
    let mut line = format!(
        "  degradation: {faults} disk faults, {shed} commits shed (storage) \
         + {breaker} at the breaker, {degraded_ticks} degraded ticks, \
         {scrub_passes} scrub passes, ended {state}"
    );
    if quarantined > 0 {
        line.push_str(&format!(", {quarantined} segments quarantined"));
    }
    if overload > 0 {
        line.push_str(&format!(
            " ({overload} further sheds were overload, not storage)"
        ));
    }
    Some(line)
}

/// One-line open-loop overload accounting: offered vs admitted vs
/// completed-within-deadline, sheds split by cause, retry-budget
/// activity, and the sojourn tail of executed requests. Takes the point
/// *window* snapshot ([`PointMeasurement::metrics`]: `openloop.*`
/// counters and the `openloop.sojourn` histogram, present only on runs
/// driven by `Harness::run_open_loop`). Returns `None` for closed-loop
/// runs so their reports are unchanged.
///
/// [`PointMeasurement::metrics`]: crate::harness::PointMeasurement
pub fn overload_line(m: &MetricsSnapshot) -> Option<String> {
    let offered = m.counter(names::OPENLOOP_OFFERED);
    if offered == 0 {
        return None;
    }
    let goodput = m.counter(names::OPENLOOP_GOODPUT);
    let missed = m.counter(names::OPENLOOP_DEADLINE_MISSED);
    let shed_queue = m.counter(names::OPENLOOP_SHED_QUEUE);
    let shed_stale = m.counter(names::OPENLOOP_SHED_STALE);
    let shed_engine = m.counter(names::OPENLOOP_SHED_ENGINE);
    let shed_degraded = m.counter(names::OPENLOOP_SHED_DEGRADED);
    let retries = m.counter(names::OPENLOOP_RETRIES);
    let denied = m.counter(names::OPENLOOP_RETRY_DENIED);
    let gave_up = m.counter(names::OPENLOOP_GAVE_UP);
    let pct = 100.0 * goodput as f64 / offered as f64;
    let mut line = format!(
        "  overload: offered {offered}, goodput {goodput} ({pct:.1}%), {missed} late, \
         shed {}/{}/{} overload (queue/stale/gate)",
        shed_queue, shed_stale, shed_engine
    );
    if shed_degraded > 0 {
        line.push_str(&format!(" + {shed_degraded} degraded"));
    }
    line.push_str(&format!(
        ", retries {retries} ({denied} budget-denied), {gave_up} gave up"
    ));
    if let Some(h) = m.histogram(names::OPENLOOP_SOJOURN) {
        if !h.is_empty() {
            line.push_str(&format!(
                ", sojourn p50 {:.1}ms / p99 {:.1}ms / p999 {:.1}ms",
                h.quantile(0.50) as f64 / 1e6,
                h.quantile(0.99) as f64 / 1e6,
                h.quantile(0.999) as f64 / 1e6,
            ));
        }
    }
    Some(line)
}

/// One-line MVCC vacuum accounting: how many background passes ran, how
/// many dead versions they reclaimed, and how many versions remained
/// alive at the end of the run. Takes the *cumulative* snapshot
/// ([`PointMeasurement::metrics_end`]: `vacuum.*` counters run since
/// engine start). Returns `None` when the vacuum never ran and no
/// version count was sampled (e.g. `--no-vacuum` on a read-only run).
///
/// [`PointMeasurement::metrics_end`]: crate::harness::PointMeasurement
pub fn vacuum_line(m: &MetricsSnapshot) -> Option<String> {
    let passes = m.counter(names::VACUUM_PASSES);
    let pruned = m.counter(names::VACUUM_VERSIONS_PRUNED);
    let live = m.gauge(names::LIVE_VERSIONS);
    if passes == 0 && pruned == 0 && live == 0 {
        return None;
    }
    let mut line = format!(
        "  vacuum: {passes} passes, {pruned} versions pruned, {live} live"
    );
    if let Some(h) = m.histogram(names::VACUUM_CHAIN_LENGTH) {
        line.push_str(&format!(
            ", chain p50 {} / p99 {}",
            h.quantile(0.50),
            h.quantile(0.99)
        ));
    }
    Some(line)
}

/// One-line analytical-executor accounting: the largest worker pool a
/// query used, how many morsels the probe phases scanned vs. pruned via
/// zone maps, and the wall time spent probing. Takes the *cumulative*
/// snapshot ([`PointMeasurement::metrics_end`]: `scan.*`/`probe.*`
/// counters). Returns `None` when no analytical query ran.
///
/// [`PointMeasurement::metrics_end`]: crate::harness::PointMeasurement
pub fn analytics_line(m: &MetricsSnapshot) -> Option<String> {
    let scanned = m.counter(names::MORSELS_SCANNED);
    let pruned = m.counter(names::MORSELS_PRUNED);
    if scanned == 0 && pruned == 0 {
        return None;
    }
    let mut line = format!(
        "  analytics: {} workers max, {scanned} morsels scanned, {pruned} pruned, \
         probe {:.1}ms",
        m.gauge(names::PROBE_WORKERS_MAX),
        m.counter(names::PROBE_NANOS) as f64 / 1e6
    );
    let saturations = m.counter(names::AGG_SATURATIONS);
    if saturations > 0 {
        line.push_str(&format!(", {saturations} aggregate saturations"));
    }
    Some(line)
}

/// One-line vectorized-scan accounting: how many column batches the
/// kernels filtered, how many rows zone maps pruned before any batch was
/// read vs. how many the selection-vector kernels rejected, and the
/// columnar compression ratio (decoded-equivalent bytes over encoded
/// bytes). Takes the *cumulative* snapshot
/// ([`PointMeasurement::metrics_end`]: `scan.*` counters and
/// `colstore.*` gauges). Returns `None` when the vectorized path never
/// ran (scalar-only engines, or no analytical queries).
///
/// [`PointMeasurement::metrics_end`]: crate::harness::PointMeasurement
pub fn scan_line(m: &MetricsSnapshot) -> Option<String> {
    let batches = m.counter(names::SCAN_BATCHES);
    let pruned = m.counter(names::SCAN_ROWS_PRUNED);
    let filtered = m.counter(names::SCAN_ROWS_FILTERED);
    if batches == 0 && pruned == 0 && filtered == 0 {
        return None;
    }
    let mut line = format!(
        "  scan: {batches} batches, {pruned} rows pruned (zone maps), \
         {filtered} filtered (kernels)"
    );
    let encoded = m.gauge(names::COLSTORE_BYTES_ENCODED);
    let decoded = m.gauge(names::COLSTORE_BYTES_DECODED);
    if encoded > 0 && decoded > 0 {
        line.push_str(&format!(
            ", colstore {:.2}x compressed ({} -> {} bytes)",
            decoded as f64 / encoded as f64,
            decoded,
            encoded
        ));
    }
    Some(line)
}

/// One-line elastic-scheduler accounting: how many controller decisions
/// the run took, how many actually moved cores, the final `t/a` split,
/// and how many analytical queries the elastic side completed. Takes the
/// *window* snapshot ([`PointMeasurement::metrics`]: `sched.*` counters,
/// present only on runs driven under [`SchedPolicy::Elastic`]). Returns
/// `None` for static runs so their reports are unchanged.
///
/// [`PointMeasurement::metrics`]: crate::harness::PointMeasurement
/// [`SchedPolicy::Elastic`]: crate::sched::SchedPolicy
pub fn sched_line(m: &MetricsSnapshot) -> Option<String> {
    let decisions = m.counter(names::SCHED_DECISIONS);
    if decisions == 0 {
        return None;
    }
    let reassignments = m.counter(names::SCHED_REASSIGNMENTS);
    let a_queries = m.counter(names::SCHED_A_QUERIES);
    let t_cores = m.gauge(names::SCHED_T_CORES);
    let a_cores = m.gauge(names::SCHED_A_CORES);
    Some(format!(
        "  sched: {decisions} decisions, {reassignments} reassignments, \
         final split {t_cores}t/{a_cores}a, {a_queries} analytical queries"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::FrontierPoint;
    use hat_common::telemetry::HistogramSnapshot;

    fn frontier() -> Frontier {
        Frontier::from_points(vec![
            FrontierPoint { t: 100.0, a: 0.0, t_clients: 4, a_clients: 0 },
            FrontierPoint { t: 60.0, a: 6.0, t_clients: 2, a_clients: 2 },
            FrontierPoint { t: 0.0, a: 10.0, t_clients: 0, a_clients: 4 },
        ])
    }

    #[test]
    fn frontier_csv_has_header_and_rows() {
        let csv = frontier_csv(&frontier());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_clients,a_clients,tps,qps");
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("2,2,60.00,6.000"));
    }

    #[test]
    fn durability_line_elides_off_mode_and_reports_counters() {
        let off = MetricsSnapshot::new();
        assert!(durability_line(&off).is_none(), "nothing to say when durability is off");
        let mut flushed = MetricsSnapshot::new();
        flushed.set_counter(names::WAL_FSYNCS, 120);
        flushed.set_histogram(
            names::WAL_GROUP_COMMIT_BATCH,
            HistogramSnapshot::from_values(&[3, 3, 3, 9]),
        );
        let line = durability_line(&flushed).unwrap();
        assert!(line.contains("120 fsyncs"));
        assert!(line.contains("p50 3.0"));
        assert!(line.contains("p99 9.0"));
        assert!(!line.contains("recovered"), "no recovery counters on a clean start");
        flushed.set_counter(names::WAL_RECOVERY_REPLAYED, 42);
        flushed.set_counter(names::WAL_TORN_TAILS, 1);
        let line = durability_line(&flushed).unwrap();
        assert!(line.contains("recovered 42 records"));
        assert!(line.contains("1 torn tails truncated"));
    }

    #[test]
    fn analytics_line_elides_idle_points_and_reports_counters() {
        let idle = MetricsSnapshot::new();
        assert!(analytics_line(&idle).is_none(), "no queries ran, nothing to say");
        let mut busy = MetricsSnapshot::new();
        busy.set_gauge(names::PROBE_WORKERS_MAX, 8);
        busy.set_counter(names::MORSELS_SCANNED, 240);
        busy.set_counter(names::MORSELS_PRUNED, 60);
        busy.set_counter(names::PROBE_NANOS, 2_500_000);
        let line = analytics_line(&busy).unwrap();
        assert!(line.contains("8 workers max"));
        assert!(line.contains("240 morsels scanned"));
        assert!(line.contains("60 pruned"));
        assert!(line.contains("probe 2.5ms"));
        assert!(!line.contains("saturations"), "clamp counter elided when zero");
        busy.set_counter(names::AGG_SATURATIONS, 3);
        let line = analytics_line(&busy).unwrap();
        assert!(line.contains("3 aggregate saturations"));
    }

    #[test]
    fn scan_line_elides_scalar_runs_and_reports_ratio() {
        let idle = MetricsSnapshot::new();
        assert!(scan_line(&idle).is_none(), "scalar-only runs stay silent");
        let mut busy = MetricsSnapshot::new();
        busy.set_counter(names::SCAN_BATCHES, 50);
        busy.set_counter(names::SCAN_ROWS_PRUNED, 8192);
        busy.set_counter(names::SCAN_ROWS_FILTERED, 3000);
        let line = scan_line(&busy).unwrap();
        assert!(line.contains("50 batches"));
        assert!(line.contains("8192 rows pruned (zone maps)"));
        assert!(line.contains("3000 filtered (kernels)"));
        assert!(!line.contains("compressed"), "ratio elided without gauges");
        busy.set_gauge(names::COLSTORE_BYTES_ENCODED, 1_000);
        busy.set_gauge(names::COLSTORE_BYTES_DECODED, 4_000);
        let line = scan_line(&busy).unwrap();
        assert!(line.contains("4.00x compressed"));
        assert!(line.contains("4000 -> 1000 bytes"));
    }

    #[test]
    fn degradation_line_elides_clean_runs_and_reports_counters() {
        let clean = MetricsSnapshot::new();
        assert!(degradation_line(&clean).is_none(), "fault-free runs stay silent");
        let mut hurt = MetricsSnapshot::new();
        hurt.set_counter(names::DISK_FAULTS, 6);
        hurt.set_counter(names::WAL_SHED_COMMITS, 11);
        hurt.set_counter(names::HEALTH_DEGRADED_TICKS, 4);
        hurt.set_counter(names::WAL_SCRUB_PASSES, 2);
        let line = degradation_line(&hurt).unwrap();
        assert!(line.contains("6 disk faults"));
        assert!(line.contains("11 commits shed (storage)"));
        assert!(line.contains("+ 0 at the breaker"));
        assert!(line.contains("4 degraded ticks"));
        assert!(line.contains("2 scrub passes"));
        assert!(line.contains("ended healthy"));
        assert!(!line.contains("quarantined"), "quarantine elided when zero");
        assert!(!line.contains("overload"), "no overload cross-ref when zero");
        hurt.set_counter(names::WAL_QUARANTINED, 1);
        hurt.set_gauge(names::HEALTH_STATE, 1);
        let line = degradation_line(&hurt).unwrap();
        assert!(line.contains("ended degraded"));
        assert!(line.contains("1 segments quarantined"));
        // A run that ends below Healthy reports even with zero counters.
        let mut stuck = MetricsSnapshot::new();
        stuck.set_gauge(names::HEALTH_STATE, 2);
        assert!(degradation_line(&stuck).unwrap().contains("ended recovering"));
    }

    #[test]
    fn degradation_line_splits_shed_causes() {
        // Breaker sheds alone are enough to report (the disk made
        // admission refuse work), and overload-admission sheds are
        // called out as a separate cause, never folded into storage.
        let mut m = MetricsSnapshot::new();
        m.set_counter(names::ADMIT_TXN_SHED_BREAKER, 7);
        m.set_counter(names::ADMIT_QUERY_SHED_BREAKER, 2);
        m.set_counter(names::ADMIT_TXN_SHED, 30);
        m.set_counter(names::ADMIT_QUERY_SHED, 10);
        let line = degradation_line(&m).unwrap();
        assert!(line.contains("0 commits shed (storage) + 9 at the breaker"));
        assert!(line.contains("40 further sheds were overload, not storage"));
        // Pure-overload sheds with a healthy disk stay out of the
        // degradation report entirely.
        let mut traffic = MetricsSnapshot::new();
        traffic.set_counter(names::ADMIT_TXN_SHED, 500);
        assert!(degradation_line(&traffic).is_none());
    }

    #[test]
    fn overload_line_elides_closed_loop_and_reports_goodput() {
        let closed = MetricsSnapshot::new();
        assert!(overload_line(&closed).is_none(), "closed-loop runs stay silent");
        let mut m = MetricsSnapshot::new();
        m.set_counter(names::OPENLOOP_OFFERED, 1000);
        m.set_counter(names::OPENLOOP_GOODPUT, 900);
        m.set_counter(names::OPENLOOP_DEADLINE_MISSED, 20);
        m.set_counter(names::OPENLOOP_SHED_QUEUE, 5);
        m.set_counter(names::OPENLOOP_SHED_STALE, 40);
        m.set_counter(names::OPENLOOP_SHED_ENGINE, 15);
        m.set_counter(names::OPENLOOP_RETRIES, 33);
        m.set_counter(names::OPENLOOP_RETRY_DENIED, 8);
        m.set_counter(names::OPENLOOP_GAVE_UP, 12);
        let line = overload_line(&m).unwrap();
        assert!(line.contains("offered 1000"));
        assert!(line.contains("goodput 900 (90.0%)"));
        assert!(line.contains("20 late"));
        assert!(line.contains("shed 5/40/15 overload (queue/stale/gate)"));
        assert!(!line.contains("degraded"), "degraded sheds elided when zero");
        assert!(line.contains("retries 33 (8 budget-denied)"));
        assert!(line.contains("12 gave up"));
        assert!(!line.contains("sojourn"), "histogram elided when absent");
        m.set_counter(names::OPENLOOP_SHED_DEGRADED, 3);
        m.set_histogram(
            names::OPENLOOP_SOJOURN,
            HistogramSnapshot::from_values(&[2_000_000, 4_000_000, 30_000_000]),
        );
        let line = overload_line(&m).unwrap();
        assert!(line.contains("+ 3 degraded"));
        assert!(line.contains("sojourn p50"));
        assert!(line.contains("p999"));
    }

    #[test]
    fn sched_line_elides_static_runs_and_reports_split() {
        let static_run = MetricsSnapshot::new();
        assert!(sched_line(&static_run).is_none(), "static runs stay silent");
        let mut m = MetricsSnapshot::new();
        m.set_counter(names::SCHED_DECISIONS, 60);
        m.set_counter(names::SCHED_REASSIGNMENTS, 4);
        m.set_counter(names::SCHED_A_QUERIES, 210);
        m.set_gauge(names::SCHED_T_CORES, 3);
        m.set_gauge(names::SCHED_A_CORES, 1);
        let line = sched_line(&m).unwrap();
        assert!(line.contains("60 decisions"));
        assert!(line.contains("4 reassignments"));
        assert!(line.contains("final split 3t/1a"));
        assert!(line.contains("210 analytical queries"));
    }

    #[test]
    fn vacuum_line_elides_idle_runs_and_reports_counters() {
        let idle = MetricsSnapshot::new();
        assert!(vacuum_line(&idle).is_none(), "vacuum never ran, nothing to say");
        let mut busy = MetricsSnapshot::new();
        busy.set_counter(names::VACUUM_PASSES, 40);
        busy.set_counter(names::VACUUM_VERSIONS_PRUNED, 12_000);
        busy.set_gauge(names::LIVE_VERSIONS, 600);
        let line = vacuum_line(&busy).unwrap();
        assert!(line.contains("40 passes"));
        assert!(line.contains("12000 versions pruned"));
        assert!(line.contains("600 live"));
        assert!(!line.contains("chain"), "histogram elided when absent");
        busy.set_histogram(
            names::VACUUM_CHAIN_LENGTH,
            HistogramSnapshot::from_values(&[1, 1, 2, 9]),
        );
        let line = vacuum_line(&busy).unwrap();
        assert!(line.contains("chain p50 1 / p99 9"));
    }

    #[test]
    fn cdf_csv_rows() {
        let csv = cdf_csv(&[(0.0, 0.5), (1.5, 1.0)]);
        assert!(csv.contains("seconds,fraction"));
        assert!(csv.contains("1.500000,1.000000"));
    }

    #[test]
    fn ascii_plot_contains_markers_and_legend() {
        let plot = ascii_plot(
            "demo",
            "x",
            "y",
            &[Series { name: "stuff", marker: '*', points: vec![(1.0, 1.0), (2.0, 0.5)] }],
            32,
            10,
        );
        assert!(plot.contains('*'));
        assert!(plot.contains("demo"));
        assert!(plot.contains("* = stuff"));
        assert!(plot.contains("max 2.00"));
    }

    #[test]
    fn ascii_plot_handles_empty_series() {
        let plot = ascii_plot("empty", "x", "y", &[], 20, 8);
        assert!(plot.contains("empty"));
    }

    #[test]
    fn frontier_ascii_draws_both_series() {
        let plot = frontier_ascii("test-engine", &frontier());
        assert!(plot.contains('o'));
        assert!(plot.contains('.'));
        assert!(plot.contains("proportional line"));
    }

    #[test]
    fn resilience_line_elides_clean_runs_and_reports_counters() {
        let clean = MetricsSnapshot::new();
        assert!(resilience_line(&clean).contains("clean"));
        let mut noisy = MetricsSnapshot::new();
        noisy.set_counter(names::HARNESS_ABORTS, 4);
        noisy.set_counter(names::HARNESS_RETRIES, 3);
        noisy.set_counter(names::HARNESS_TIMEOUTS, 2);
        noisy.set_counter(names::HARNESS_GAVE_UP, 1);
        noisy.set_counter(names::HARNESS_QUERY_RETRIES, 5);
        noisy.set_gauge(names::HARNESS_BACKLOG_HWM, 17);
        let line = resilience_line(&noisy);
        assert!(line.contains("4 aborts"));
        assert!(line.contains("3 retries"));
        assert!(line.contains("2 in-doubt commits"));
        assert!(line.contains("1 gave up"));
        assert!(line.contains("5 query retries"));
        assert!(line.contains("backlog hwm 17"));
    }

    #[test]
    fn summary_reports_metrics() {
        let agg = FreshnessAgg::from_samples(&[0.0, 0.1, 0.2]);
        let s = summary("engine-x", &frontier(), &agg);
        assert!(s.contains("engine-x"));
        assert!(s.contains("X_T = 100.0"));
        assert!(s.contains("p99"));
        let s = summary("engine-y", &frontier(), &FreshnessAgg::default());
        assert!(s.contains("no samples"));
    }
}
