//! Open-loop arrival schedules for overload experiments.
//!
//! The paper's harness is *closed-loop*: τ clients each wait for their
//! previous request, so offered load can never exceed what the engine
//! sustains — overload is structurally unobservable. This module supplies
//! the other half: a seeded arrival-schedule generator
//! ([`ArrivalShape`]) whose per-tick request counts are an *input*, and
//! the configuration ([`OpenLoopConfig`]) for the driver in
//! [`Harness::run_open_loop`](crate::harness::Harness::run_open_loop)
//! that decouples virtual clients from OS threads: arrivals land in a
//! bounded queue with enqueue timestamps and deadlines, and a fixed
//! worker pool drains it. When arrivals outpace the workers, the queue —
//! not the client count — absorbs the difference, and what the system
//! does next (shed, miss deadlines, or collapse) is exactly what the
//! overload experiments measure.

use hat_common::rng::HatRng;
use std::time::Duration;

use crate::gen::MAX_TXN_CLIENTS;

/// Shape of the offered-load schedule. Each tick's mean arrival count is
/// `arrival_rate * tick_secs * multiplier(tick)`; the actual count is a
/// seeded Poisson draw around that mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// Constant mean rate (a memoryless client population).
    Poisson,
    /// Diurnal swing: the mean rate oscillates sinusoidally between
    /// `(1 - depth)×` and `(1 + depth)×` the base rate with the given
    /// period — bursty-but-bounded load for capacity-headroom runs.
    Bursty { period_ticks: u32, depth: f64 },
    /// Step overload: `mult ×` the base rate during
    /// `[from_tick, until_tick)`, base rate elsewhere. The metastable
    /// experiment's trigger: a burst that *ends*, after which a healthy
    /// system must return to baseline goodput.
    Step { mult: f64, from_tick: u32, until_tick: u32 },
}

impl ArrivalShape {
    /// Mean-rate multiplier at `tick`.
    pub fn multiplier(&self, tick: u32) -> f64 {
        match *self {
            ArrivalShape::Poisson => 1.0,
            ArrivalShape::Bursty { period_ticks, depth } => {
                let period = period_ticks.max(1) as f64;
                let phase = (tick as f64 / period) * std::f64::consts::TAU;
                1.0 + depth.clamp(0.0, 1.0) * phase.sin()
            }
            ArrivalShape::Step { mult, from_tick, until_tick } => {
                if tick >= from_tick && tick < until_tick {
                    mult
                } else {
                    1.0
                }
            }
        }
    }

    /// Label for reports and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalShape::Poisson => "poisson",
            ArrivalShape::Bursty { .. } => "bursty",
            ArrivalShape::Step { .. } => "step",
        }
    }
}

/// Uniform in `(0, 1]` (never zero, safe under `ln`).
fn uniform(rng: &mut HatRng) -> f64 {
    (((rng.next_u64() >> 11) + 1) as f64) / ((1u64 << 53) as f64)
}

/// One seeded Poisson draw with mean `lambda`.
///
/// Knuth's product method below λ=64; above it (where `exp(-λ)` heads
/// toward underflow and the loop toward λ iterations) the normal
/// approximation `N(λ, λ)` — its error is far below the run-to-run
/// variance any open-loop experiment already tolerates.
pub fn poisson(rng: &mut HatRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 64.0 {
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= uniform(rng);
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
    // Box-Muller.
    let u1 = uniform(rng);
    let u2 = uniform(rng);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (lambda + lambda.sqrt() * z + 0.5).max(0.0) as u64
}

/// The full seeded arrival schedule: arrivals per tick. Deterministic in
/// `(seed, rate, shape, ticks, tick)` — two runs of the same config
/// offer byte-identical load.
pub fn arrival_schedule(config: &OpenLoopConfig, seed: u64) -> Vec<u64> {
    let mut rng = HatRng::derive(seed, 0x0_4EA1);
    let per_tick = config.arrival_rate * config.tick.as_secs_f64();
    (0..config.ticks)
        .map(|t| poisson(&mut rng, per_tick * config.shape.multiplier(t)))
        .collect()
}

/// Configuration of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Mean offered load, requests per second (the independent variable).
    pub arrival_rate: f64,
    /// Schedule shape around that mean.
    pub shape: ArrivalShape,
    /// Per-attempt latency budget: a request still queued past this is
    /// shed without executing; one that *completes* past it counts as
    /// `deadline_missed`, not goodput.
    pub deadline: Duration,
    /// Fixed worker-pool size (the serving capacity, decoupled from the
    /// unbounded virtual-client population implied by the arrival rate).
    pub workers: u32,
    /// Bounded arrival-queue capacity; arrivals beyond it are shed at
    /// enqueue (the memory backstop — sojourn shedding is the intended
    /// control surface).
    pub queue_cap: u32,
    /// Run length in ticks.
    pub ticks: u32,
    /// Tick length (arrival-batch granularity and series resolution).
    pub tick: Duration,
    /// Simulated per-request downstream work each worker pays before the
    /// transaction — pins serving capacity at roughly
    /// `workers / service_pad` regardless of engine speed, which is what
    /// makes overload experiments reproducible across hardware. Zero
    /// means capacity is whatever the engine delivers.
    pub service_pad: Duration,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            arrival_rate: 2000.0,
            shape: ArrivalShape::Poisson,
            deadline: Duration::from_millis(20),
            workers: 4,
            queue_cap: 4096,
            ticks: 100,
            tick: Duration::from_millis(5),
            service_pad: Duration::ZERO,
        }
    }
}

impl OpenLoopConfig {
    /// Validates the config, returning a typed error instead of letting
    /// the driver panic mid-run.
    pub fn validate(&self) -> hat_common::Result<()> {
        if self.workers == 0 || self.workers > MAX_TXN_CLIENTS {
            return Err(hat_common::HatError::InvalidConfig(format!(
                "open-loop workers must be in 1..={MAX_TXN_CLIENTS}, got {}",
                self.workers
            )));
        }
        if self.ticks == 0 || self.tick.is_zero() {
            return Err(hat_common::HatError::InvalidConfig(
                "open-loop run needs at least one nonzero tick".into(),
            ));
        }
        if !(self.arrival_rate > 0.0 && self.arrival_rate.is_finite()) {
            return Err(hat_common::HatError::InvalidConfig(format!(
                "arrival rate must be positive and finite, got {}",
                self.arrival_rate
            )));
        }
        if self.deadline.is_zero() {
            return Err(hat_common::HatError::InvalidConfig(
                "deadline must be nonzero (every request would be born dead)".into(),
            ));
        }
        Ok(())
    }
}

/// Per-tick outcome counters of an open-loop run. Events are attributed
/// to the tick in which they happened (completion tick for completions,
/// shed tick for sheds), so the series shows the burst *and* the
/// recovery after it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenLoopTick {
    pub tick: u32,
    /// Arrivals the schedule generated this tick.
    pub offered: u64,
    /// Arrivals that entered the queue (offered − queue-overflow sheds).
    pub enqueued: u64,
    /// Sheds at enqueue: bounded queue full.
    pub shed_queue: u64,
    /// Sheds at dequeue: the request's queue sojourn already exceeded
    /// its deadline, so executing it would be doomed work.
    pub shed_stale: u64,
    /// Sheds by the engine's admission gate (`HatError::Overloaded`).
    pub shed_engine: u64,
    /// Sheds attributed to storage degradation (`HatError::Degraded`).
    pub shed_degraded: u64,
    /// Requests that finished executing (in or out of deadline).
    pub completed: u64,
    /// Completions within deadline — the number that matters.
    pub goodput: u64,
    /// Completions past deadline (work done, client already gone).
    pub deadline_missed: u64,
    /// Retry attempts re-enqueued.
    pub retries: u64,
    /// Retries denied by the retry budget (each also counts as gave_up).
    pub retry_denied: u64,
    /// Logical requests abandoned (attempts or budget exhausted, or
    /// retry re-enqueue found the queue full).
    pub gave_up: u64,
    /// Retryable engine aborts other than overload/degradation sheds
    /// (write conflicts, serialization failures).
    pub aborts: u64,
}

impl OpenLoopTick {
    /// All sheds of this tick, regardless of cause.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue + self.shed_stale + self.shed_engine + self.shed_degraded
    }

    /// Overload-cause sheds (traffic, not storage).
    pub fn shed_overload(&self) -> u64 {
        self.shed_queue + self.shed_stale + self.shed_engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = HatRng::seeded(7);
        for &lambda in &[0.5, 3.0, 20.0, 200.0] {
            let n = 4000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum as f64 / n as f64;
            // Poisson std is sqrt(λ); 4000 samples put the sample mean
            // within ~5 standard errors of λ with huge margin.
            let tol = 5.0 * (lambda / n as f64).sqrt() + 0.05;
            assert!(
                (mean - lambda).abs() < tol,
                "λ={lambda}: sample mean {mean} (tol {tol})"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn schedule_is_deterministic_and_shaped() {
        let config = OpenLoopConfig {
            arrival_rate: 10_000.0,
            shape: ArrivalShape::Step { mult: 10.0, from_tick: 10, until_tick: 20 },
            ticks: 30,
            tick: Duration::from_millis(5),
            ..OpenLoopConfig::default()
        };
        let a = arrival_schedule(&config, 42);
        let b = arrival_schedule(&config, 42);
        assert_eq!(a, b, "same seed, same schedule");
        let c = arrival_schedule(&config, 43);
        assert_ne!(a, c, "different seed, different draws");
        // The burst window really offers ~10x the base-load ticks.
        let base: u64 = a[..10].iter().sum();
        let burst: u64 = a[10..20].iter().sum();
        assert!(
            burst > 5 * base,
            "burst ticks must dwarf base ticks: {burst} vs {base}"
        );
    }

    #[test]
    fn bursty_shape_oscillates_around_one() {
        let shape = ArrivalShape::Bursty { period_ticks: 20, depth: 0.5 };
        let mults: Vec<f64> = (0..20).map(|t| shape.multiplier(t)).collect();
        let lo = mults.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = mults.iter().cloned().fold(0.0f64, f64::max);
        assert!(lo < 0.6 && hi > 1.4, "swing [{lo}, {hi}]");
        let mean: f64 = mults.iter().sum::<f64>() / 20.0;
        assert!((mean - 1.0).abs() < 0.05, "centered on the base rate");
        assert_eq!(ArrivalShape::Poisson.multiplier(5), 1.0);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let ok = OpenLoopConfig::default();
        assert!(ok.validate().is_ok());
        let bad = OpenLoopConfig { workers: 0, ..OpenLoopConfig::default() };
        assert!(bad.validate().is_err());
        let bad = OpenLoopConfig { workers: MAX_TXN_CLIENTS + 1, ..OpenLoopConfig::default() };
        assert!(bad.validate().is_err());
        let bad = OpenLoopConfig { ticks: 0, ..OpenLoopConfig::default() };
        assert!(bad.validate().is_err());
        let bad = OpenLoopConfig { arrival_rate: 0.0, ..OpenLoopConfig::default() };
        assert!(bad.validate().is_err());
        let bad = OpenLoopConfig { arrival_rate: f64::NAN, ..OpenLoopConfig::default() };
        assert!(bad.validate().is_err());
        let bad = OpenLoopConfig { deadline: Duration::ZERO, ..OpenLoopConfig::default() };
        assert!(bad.validate().is_err());
    }
}
