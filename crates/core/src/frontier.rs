//! The throughput frontier (§3): saturation method, grid graph, frontier
//! extraction, annotations, and the design-category classifier.
//!
//! The saturation method (§3.3) first finds the client counts `τ_max` /
//! `α_max` that saturate each pure workload, then sweeps *fixed-T* lines
//! (τ fixed, α varied) and *fixed-A* lines (α fixed, τ varied). The
//! throughput frontier is assembled from the extreme point of every line
//! and reduced to its Pareto-maximal subset. The *proportional line* and
//! *bounding box* annotations (§3.2) and the area-based shape metric let
//! the benchmark tell performance isolation from proportional trade-off
//! from interference — which is how HATtrick "discovers the design
//! category" of the system under test (§2.3).

use crate::harness::{Harness, PointMeasurement};

/// One hybrid-throughput observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Transactional throughput (tps).
    pub t: f64,
    /// Analytical throughput (qps).
    pub a: f64,
    pub t_clients: u32,
    pub a_clients: u32,
}

impl FrontierPoint {
    fn from_measurement(m: &PointMeasurement) -> Self {
        FrontierPoint {
            t: m.tps,
            a: m.qps,
            t_clients: m.t_clients,
            a_clients: m.a_clients,
        }
    }

    /// Whether this point dominates `other` (at least as good on both
    /// axes, strictly better on one).
    pub fn dominates(&self, other: &FrontierPoint) -> bool {
        self.t >= other.t && self.a >= other.a && (self.t > other.t || self.a > other.a)
    }
}

/// Which client count a measurement line holds fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixedKind {
    /// τ fixed, α varied.
    FixedT,
    /// α fixed, τ varied.
    FixedA,
}

/// One fixed-T or fixed-A measurement series.
#[derive(Debug, Clone)]
pub struct GridLine {
    pub kind: FixedKind,
    /// The fixed client count.
    pub fixed_clients: u32,
    pub points: Vec<FrontierPoint>,
}

impl GridLine {
    /// The line's extreme point: maximum varied-axis throughput.
    pub fn extreme(&self) -> Option<FrontierPoint> {
        match self.kind {
            FixedKind::FixedT => self
                .points
                .iter()
                .copied()
                .max_by(|x, y| x.a.partial_cmp(&y.a).expect("no NaN")),
            FixedKind::FixedA => self
                .points
                .iter()
                .copied()
                .max_by(|x, y| x.t.partial_cmp(&y.t).expect("no NaN")),
        }
    }
}

/// The full grid graph (§3.2.1) plus saturation metadata.
#[derive(Debug, Clone)]
pub struct GridGraph {
    pub fixed_t: Vec<GridLine>,
    pub fixed_a: Vec<GridLine>,
    /// Clients that saturate the pure T workload.
    pub tau_max: u32,
    /// Clients that saturate the pure A workload.
    pub alpha_max: u32,
    /// Maximum pure transactional throughput `X_T`.
    pub x_t: f64,
    /// Maximum pure analytical throughput `X_A`.
    pub x_a: f64,
    /// Every raw measurement taken while building the grid.
    pub measurements: Vec<PointMeasurement>,
}

impl GridGraph {
    /// Workload-preference metrics from the grid's line slopes (§3.2.1):
    /// "the closer a fixed-T or fixed-A line is to be perpendicular to the
    /// axes the less the corresponding workload is affected by the
    /// increase of the other workload".
    ///
    /// Returns `(t_retention, a_retention)`, each in `[0, 1]`:
    /// * `t_retention` — across fixed-T lines, the fraction of a line's
    ///   starting T-throughput retained at its most A-loaded point
    ///   (1.0 = perfectly vertical lines; T unaffected by A clients).
    /// * `a_retention` — the dual for fixed-A lines.
    pub fn workload_retention(&self) -> (f64, f64) {
        let t_retention = retention(&self.fixed_t, |p| p.t);
        let a_retention = retention(&self.fixed_a, |p| p.a);
        (t_retention, a_retention)
    }

    /// Which workload the system favors under mixed load, from the grid
    /// slopes: positive means the T side retains more of its throughput
    /// than the A side (the system "prefers" T), negative the opposite.
    pub fn preference(&self) -> f64 {
        let (t, a) = self.workload_retention();
        t - a
    }
}

/// Mean retained fraction of the fixed axis across a line family.
fn retention(lines: &[GridLine], axis: impl Fn(&FrontierPoint) -> f64) -> f64 {
    let mut total = 0.0;
    let mut count = 0;
    for line in lines {
        // First point: the fixed workload alone (other count = 0); last
        // point: maximum other-side load.
        let (Some(first), Some(last)) = (line.points.first(), line.points.last())
        else {
            continue;
        };
        let base = axis(first);
        if base > 0.0 {
            total += (axis(last) / base).clamp(0.0, 1.0);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Saturation-method parameters (§3.3 uses 6 lines × 6 points).
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// Fixed-T and fixed-A line count per family.
    pub lines: usize,
    /// Points measured per line.
    pub points_per_line: usize,
    /// Client-count cap for the saturation search.
    pub max_clients: u32,
    /// Relative throughput improvement below which the workload counts as
    /// saturated.
    pub epsilon: f64,
}

impl Default for SaturationConfig {
    fn default() -> Self {
        SaturationConfig {
            lines: 6,
            points_per_line: 6,
            // One-core budget: beyond ~16 clients, per-sleep scheduler
            // overhead (not engine work) dominates and pollutes the grid.
            max_clients: 16,
            epsilon: 0.05,
        }
    }
}

impl SaturationConfig {
    /// A cheaper 4×4 grid for smoke runs and tests.
    pub fn quick() -> Self {
        SaturationConfig { lines: 3, points_per_line: 3, max_clients: 8, epsilon: 0.10 }
    }
}

/// Finds the client count that saturates one pure workload by doubling
/// until the throughput gain drops below `epsilon`. Returns
/// `(clients, best observed throughput, measurements)`.
pub fn find_saturation(
    harness: &Harness,
    kind: FixedKind,
    cfg: &SaturationConfig,
) -> (u32, f64, Vec<PointMeasurement>) {
    let cap = match kind {
        FixedKind::FixedT => cfg.max_clients.min(crate::gen::MAX_TXN_CLIENTS),
        FixedKind::FixedA => cfg.max_clients,
    };
    let mut best_clients = 1;
    let mut best = f64::MIN;
    let mut measurements = Vec::new();
    let mut clients = 1u32;
    loop {
        let m = match kind {
            FixedKind::FixedT => harness.run_point(clients, 0),
            FixedKind::FixedA => harness.run_point(0, clients),
        }
        .expect("saturation point failed");
        let value = match kind {
            FixedKind::FixedT => m.tps,
            FixedKind::FixedA => m.qps,
        };
        measurements.push(m);
        let improved = value > best * (1.0 + cfg.epsilon);
        if value > best {
            best = value;
            best_clients = clients;
        }
        if clients >= cap || !improved && clients > 1 {
            break;
        }
        clients *= 2;
    }
    (best_clients, best.max(0.0), measurements)
}

/// Evenly spaced client levels `1..=max` (the paper "equally divides the
/// ranges [0, τ_max] and [0, α_max]"); zero is excluded for the fixed
/// value (a line fixed at zero clients is an axis) but included in the
/// varied direction.
fn levels(max: u32, count: usize, include_zero: bool) -> Vec<u32> {
    let mut out = Vec::new();
    let start = if include_zero { 0 } else { 1 };
    let steps = count.max(2) - 1;
    for i in 0..=steps {
        let v = start as f64
            + (max.saturating_sub(start) as f64) * i as f64 / steps as f64;
        out.push(v.round() as u32);
    }
    out.dedup();
    out.retain(|&v| include_zero || v >= 1);
    out
}

/// Runs the full saturation method: saturation searches plus both line
/// families (§3.3).
pub fn build_grid(harness: &Harness, cfg: &SaturationConfig) -> GridGraph {
    let (tau_max, x_t, mut measurements) =
        find_saturation(harness, FixedKind::FixedT, cfg);
    let (alpha_max, x_a, more) = find_saturation(harness, FixedKind::FixedA, cfg);
    measurements.extend(more);

    let t_levels = levels(tau_max, cfg.lines, false);
    let a_levels = levels(alpha_max, cfg.lines, false);
    // Sweeps extend slightly past saturation when the saturated count is
    // tiny, so lines have enough points to show their slope (§3.3 notes
    // the point count and spacing are tunable).
    let sweep_span = (cfg.points_per_line as u32).saturating_sub(1);
    let t_sweep = levels(
        tau_max.max(sweep_span).min(crate::gen::MAX_TXN_CLIENTS),
        cfg.points_per_line,
        true,
    );
    let a_sweep = levels(alpha_max.max(sweep_span), cfg.points_per_line, true);

    let mut fixed_t = Vec::new();
    for &tau in &t_levels {
        let mut points = Vec::new();
        for &alpha in &a_sweep {
            let m = harness.run_point(tau, alpha).expect("grid point failed");
            points.push(FrontierPoint::from_measurement(&m));
            measurements.push(m);
        }
        fixed_t.push(GridLine { kind: FixedKind::FixedT, fixed_clients: tau, points });
    }
    let mut fixed_a = Vec::new();
    for &alpha in &a_levels {
        let mut points = Vec::new();
        for &tau in &t_sweep {
            let m = harness.run_point(tau, alpha).expect("grid point failed");
            points.push(FrontierPoint::from_measurement(&m));
            measurements.push(m);
        }
        fixed_a.push(GridLine { kind: FixedKind::FixedA, fixed_clients: alpha, points });
    }

    GridGraph { fixed_t, fixed_a, tau_max, alpha_max, x_t, x_a, measurements }
}

/// The sampling method of Figure 1a: `n` random client mixes.
pub fn sample_random(
    harness: &Harness,
    n: usize,
    max_clients: u32,
    rng: &mut hat_common::rng::HatRng,
) -> Vec<PointMeasurement> {
    let cap_t = max_clients.min(crate::gen::MAX_TXN_CLIENTS);
    (0..n)
        .map(|_| {
            let tau = rng.range_u32(0, cap_t);
            let alpha = rng.range_u32(if tau == 0 { 1 } else { 0 }, max_clients);
            harness.run_point(tau, alpha).expect("sampled point failed")
        })
        .collect()
}

/// One entry of a multi-core shard sweep: the grid and frontier measured
/// with the transactional kernel split across `shards` commit shards.
#[derive(Debug, Clone)]
pub struct ShardSweepEntry {
    pub shards: u32,
    pub grid: GridGraph,
    pub frontier: Frontier,
}

impl ShardSweepEntry {
    /// T-axis speedup of this entry over `base`: the ratio of pure
    /// transactional throughputs `x_t / base.x_t` (the multi-core scaling
    /// signal of the shard sweep).
    pub fn t_speedup_over(&self, base: &ShardSweepEntry) -> f64 {
        if base.grid.x_t <= 0.0 {
            return 0.0;
        }
        self.grid.x_t / base.grid.x_t
    }
}

/// Sweeps the saturation method across kernel shard counts. Shard layout
/// is fixed at engine construction, so `make` must build (and load) a
/// fresh harness for each count; each harness then gets the same grid
/// procedure. Counts `make` declines are skipped. Comparing the entries'
/// pure-T extremes gives the frontier a real multi-core `x_t` axis.
pub fn sweep_shards(
    counts: &[u32],
    cfg: &SaturationConfig,
    mut make: impl FnMut(u32) -> Option<Harness>,
) -> Vec<ShardSweepEntry> {
    let mut out = Vec::new();
    for &shards in counts {
        let shards = shards.max(1);
        let Some(harness) = make(shards) else { continue };
        let grid = build_grid(&harness, cfg);
        let frontier = Frontier::from_grid(&grid);
        out.push(ShardSweepEntry { shards, grid, frontier });
    }
    out
}

/// The throughput frontier: the Pareto-maximal boundary of observed hybrid
/// throughput.
#[derive(Debug, Clone)]
pub struct Frontier {
    /// Pareto points sorted by ascending T-throughput. Always includes the
    /// axis extremes `(X_T, 0)` and `(0, X_A)`.
    pub points: Vec<FrontierPoint>,
    pub x_t: f64,
    pub x_a: f64,
}

impl Frontier {
    /// Assembles the frontier from a grid graph: the extreme point of each
    /// line plus the pure-workload extremes, Pareto-filtered (§3.3: "made
    /// up from the highest point of each fixed-T and fixed-A line").
    pub fn from_grid(grid: &GridGraph) -> Frontier {
        let mut candidates: Vec<FrontierPoint> = grid
            .fixed_t
            .iter()
            .chain(&grid.fixed_a)
            .filter_map(|line| line.extreme())
            .collect();
        candidates.push(FrontierPoint {
            t: grid.x_t,
            a: 0.0,
            t_clients: grid.tau_max,
            a_clients: 0,
        });
        candidates.push(FrontierPoint {
            t: 0.0,
            a: grid.x_a,
            t_clients: 0,
            a_clients: grid.alpha_max,
        });
        Frontier::from_points(candidates)
    }

    /// Builds a frontier directly from observations (used by the sampling
    /// method and by tests).
    pub fn from_points(mut candidates: Vec<FrontierPoint>) -> Frontier {
        // Sort by descending t; keep points with strictly increasing a.
        candidates.sort_by(|p, q| {
            q.t.partial_cmp(&p.t)
                .expect("no NaN")
                .then(q.a.partial_cmp(&p.a).expect("no NaN"))
        });
        let mut pareto: Vec<FrontierPoint> = Vec::new();
        let mut best_a = f64::MIN;
        for p in candidates {
            if p.a > best_a {
                pareto.push(p);
                best_a = p.a;
            }
        }
        pareto.reverse(); // ascending t
        let x_t = pareto.iter().map(|p| p.t).fold(0.0, f64::max);
        let x_a = pareto.iter().map(|p| p.a).fold(0.0, f64::max);
        Frontier { points: pareto, x_t, x_a }
    }

    /// The analytical throughput the frontier supports at transactional
    /// throughput `t` (piecewise-linear interpolation; 0 beyond `X_T`).
    pub fn a_at(&self, t: f64) -> f64 {
        if self.points.is_empty() || t > self.x_t {
            return 0.0;
        }
        // points ascend in t and descend in a.
        let mut prev: Option<&FrontierPoint> = None;
        for p in &self.points {
            if p.t >= t {
                return match prev {
                    None => p.a,
                    Some(q) => {
                        let span = p.t - q.t;
                        if span <= f64::EPSILON {
                            p.a.max(q.a)
                        } else {
                            q.a + (p.a - q.a) * (t - q.t) / span
                        }
                    }
                };
            }
            prev = Some(p);
        }
        // t beyond the last point but within x_t: fall to the axis value.
        self.points.last().map_or(0.0, |p| if t <= p.t { p.a } else { 0.0 })
    }

    /// The proportional-line value at `t` (§3.2): linear interpolation
    /// between the frontier's two extreme points.
    pub fn proportional_at(&self, t: f64) -> f64 {
        if self.x_t <= 0.0 {
            return self.x_a;
        }
        (1.0 - t / self.x_t) * self.x_a
    }

    /// Area under the frontier divided by the bounding-box area. 0.5 means
    /// the frontier coincides with the proportional line; 1.0 means
    /// perfect performance isolation (frontier on the bounding box); below
    /// 0.5 means negative interference.
    pub fn area_ratio(&self) -> f64 {
        if self.x_t <= 0.0 || self.x_a <= 0.0 {
            return 0.0;
        }
        // Integrate the piecewise-linear upper boundary from t=0 to X_T,
        // anchored at (0, X_A) and (X_T, 0) which `from_grid` guarantees.
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let (p, q) = (&w[0], &w[1]);
            area += (q.t - p.t) * (p.a + q.a) / 2.0;
        }
        area / (self.x_t * self.x_a)
    }

    /// Whether this frontier's region completely envelops `other`'s (§6.6:
    /// "if the throughput frontier region of a system A completely
    /// envelops that of another system B ... system A is better").
    pub fn envelops(&self, other: &Frontier, samples: usize) -> bool {
        if self.x_t < other.x_t || self.x_a < other.x_a {
            return false;
        }
        (0..=samples).all(|i| {
            let t = other.x_t * i as f64 / samples as f64;
            self.a_at(t) + 1e-9 >= other.a_at(t)
        })
    }
}

/// What the frontier's shape says about the system (§3.2's three
/// patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    /// Close to the bounding box: performance isolation (isolated-design
    /// behaviour).
    Isolation,
    /// Close to the proportional line: proportional resource trade-off.
    Proportional,
    /// Below the proportional line, close to the axes: negative
    /// interference / contention.
    Interference,
}

impl ShapeClass {
    /// Human-readable description matching the paper's vocabulary.
    pub fn describe(self) -> &'static str {
        match self {
            ShapeClass::Isolation => {
                "above the proportional line, close to the bounding box: \
                 performance isolation (isolated-design behaviour)"
            }
            ShapeClass::Proportional => {
                "close to the proportional line: proportional T/A trade-off"
            }
            ShapeClass::Interference => {
                "below the proportional line, close to the axes: negative \
                 interference between the workloads"
            }
        }
    }
}

/// Classifies a frontier's shape from its area ratio.
///
/// Thresholds: the proportional line has ratio 0.5 exactly; we call
/// anything within ±0.10 proportional, above it isolation, below it
/// interference.
pub fn classify(frontier: &Frontier) -> ShapeClass {
    let r = frontier.area_ratio();
    if r >= 0.60 {
        ShapeClass::Isolation
    } else if r >= 0.40 {
        ShapeClass::Proportional
    } else {
        ShapeClass::Interference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(t: f64, a: f64) -> FrontierPoint {
        FrontierPoint { t, a, t_clients: 0, a_clients: 0 }
    }

    #[test]
    fn dominance() {
        assert!(pt(2.0, 2.0).dominates(&pt(1.0, 2.0)));
        assert!(pt(2.0, 2.0).dominates(&pt(1.0, 1.0)));
        assert!(!pt(2.0, 1.0).dominates(&pt(1.0, 2.0)));
        assert!(!pt(1.0, 1.0).dominates(&pt(1.0, 1.0)), "equal is not strict");
    }

    #[test]
    fn pareto_filter_removes_dominated() {
        let f = Frontier::from_points(vec![
            pt(10.0, 0.0),
            pt(0.0, 5.0),
            pt(6.0, 3.0),
            pt(5.0, 2.0), // dominated by (6,3)
            pt(8.0, 2.0),
            pt(2.0, 4.0),
        ]);
        assert_eq!(f.x_t, 10.0);
        assert_eq!(f.x_a, 5.0);
        let ts: Vec<f64> = f.points.iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![0.0, 2.0, 6.0, 8.0, 10.0]);
        // Ascending t, descending a.
        assert!(f.points.windows(2).all(|w| w[0].a >= w[1].a));
    }

    #[test]
    fn interpolation() {
        let f = Frontier::from_points(vec![pt(10.0, 0.0), pt(0.0, 10.0), pt(5.0, 8.0)]);
        assert!((f.a_at(0.0) - 10.0).abs() < 1e-9);
        assert!((f.a_at(2.5) - 9.0).abs() < 1e-9);
        assert!((f.a_at(5.0) - 8.0).abs() < 1e-9);
        assert!((f.a_at(10.0) - 0.0).abs() < 1e-9);
        assert_eq!(f.a_at(11.0), 0.0);
    }

    #[test]
    fn proportional_line() {
        let f = Frontier::from_points(vec![pt(10.0, 0.0), pt(0.0, 4.0)]);
        assert!((f.proportional_at(0.0) - 4.0).abs() < 1e-9);
        assert!((f.proportional_at(5.0) - 2.0).abs() < 1e-9);
        assert!((f.proportional_at(10.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn area_ratio_of_known_shapes() {
        // Pure triangle = proportional line = 0.5.
        let tri = Frontier::from_points(vec![pt(10.0, 0.0), pt(0.0, 10.0)]);
        assert!((tri.area_ratio() - 0.5).abs() < 1e-9);
        // Near-rectangle: isolation, ratio near 1.
        let rect = Frontier::from_points(vec![
            pt(10.0, 0.0),
            pt(9.9, 9.9),
            pt(0.0, 10.0),
        ]);
        assert!(rect.area_ratio() > 0.9);
        // Collapsed toward axes: interference.
        let axes = Frontier::from_points(vec![
            pt(10.0, 0.0),
            pt(1.0, 1.0),
            pt(0.0, 10.0),
        ]);
        assert!(axes.area_ratio() < 0.2);
    }

    #[test]
    fn classification_thresholds() {
        let tri = Frontier::from_points(vec![pt(10.0, 0.0), pt(0.0, 10.0)]);
        assert_eq!(classify(&tri), ShapeClass::Proportional);
        let rect = Frontier::from_points(vec![
            pt(10.0, 0.0),
            pt(9.5, 9.5),
            pt(0.0, 10.0),
        ]);
        assert_eq!(classify(&rect), ShapeClass::Isolation);
        let axes = Frontier::from_points(vec![
            pt(10.0, 0.0),
            pt(0.5, 0.5),
            pt(0.0, 10.0),
        ]);
        assert_eq!(classify(&axes), ShapeClass::Interference);
        assert!(ShapeClass::Isolation.describe().contains("isolation"));
    }

    #[test]
    fn envelopment() {
        let big = Frontier::from_points(vec![pt(10.0, 0.0), pt(8.0, 8.0), pt(0.0, 10.0)]);
        let small = Frontier::from_points(vec![pt(5.0, 0.0), pt(0.0, 5.0)]);
        assert!(big.envelops(&small, 50));
        assert!(!small.envelops(&big, 50));
        // Crossing frontiers: neither envelops.
        let tall = Frontier::from_points(vec![pt(3.0, 0.0), pt(0.0, 20.0)]);
        assert!(!big.envelops(&tall, 50));
        assert!(!tall.envelops(&big, 50));
    }

    #[test]
    fn levels_are_sane() {
        assert_eq!(levels(6, 6, false), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(levels(6, 6, true), vec![0, 1, 2, 4, 5, 6]);
        assert_eq!(levels(2, 6, false), vec![1, 2]);
        assert_eq!(levels(1, 3, true), vec![0, 1]);
    }

    fn grid_with(fixed_t: Vec<GridLine>, fixed_a: Vec<GridLine>) -> GridGraph {
        GridGraph {
            fixed_t,
            fixed_a,
            tau_max: 1,
            alpha_max: 1,
            x_t: 10.0,
            x_a: 10.0,
            measurements: Vec::new(),
        }
    }

    #[test]
    fn retention_of_perpendicular_lines_is_one() {
        // A fixed-T line that keeps its tps as α grows: perfect isolation.
        let grid = grid_with(
            vec![GridLine {
                kind: FixedKind::FixedT,
                fixed_clients: 2,
                points: vec![pt(8.0, 0.0), pt(8.0, 3.0), pt(8.0, 6.0)],
            }],
            vec![GridLine {
                kind: FixedKind::FixedA,
                fixed_clients: 2,
                points: vec![pt(0.0, 6.0), pt(4.0, 6.0), pt(8.0, 6.0)],
            }],
        );
        let (t, a) = grid.workload_retention();
        assert!((t - 1.0).abs() < 1e-9);
        assert!((a - 1.0).abs() < 1e-9);
        assert!(grid.preference().abs() < 1e-9);
    }

    #[test]
    fn retention_detects_workload_preference() {
        // T keeps 90% under A load; A keeps only 30% under T load: the
        // system favors the T workload.
        let grid = grid_with(
            vec![GridLine {
                kind: FixedKind::FixedT,
                fixed_clients: 2,
                points: vec![pt(10.0, 0.0), pt(9.0, 5.0)],
            }],
            vec![GridLine {
                kind: FixedKind::FixedA,
                fixed_clients: 2,
                points: vec![pt(0.0, 10.0), pt(7.0, 3.0)],
            }],
        );
        let (t, a) = grid.workload_retention();
        assert!((t - 0.9).abs() < 1e-9);
        assert!((a - 0.3).abs() < 1e-9);
        assert!(grid.preference() > 0.5);
    }

    #[test]
    fn retention_handles_empty_and_zero_lines() {
        let grid = grid_with(
            vec![GridLine { kind: FixedKind::FixedT, fixed_clients: 1, points: vec![] }],
            vec![GridLine {
                kind: FixedKind::FixedA,
                fixed_clients: 1,
                points: vec![pt(0.0, 0.0), pt(1.0, 0.0)],
            }],
        );
        let (t, a) = grid.workload_retention();
        assert_eq!(t, 0.0, "no usable fixed-T lines");
        assert_eq!(a, 0.0, "zero base throughput is skipped");
    }

    #[test]
    fn grid_line_extremes() {
        let line = GridLine {
            kind: FixedKind::FixedT,
            fixed_clients: 2,
            points: vec![pt(5.0, 1.0), pt(4.0, 3.0), pt(3.0, 2.0)],
        };
        let e = line.extreme().unwrap();
        assert_eq!(e.a, 3.0);
        let line = GridLine {
            kind: FixedKind::FixedA,
            fixed_clients: 2,
            points: vec![pt(5.0, 1.0), pt(4.0, 3.0)],
        };
        assert_eq!(line.extreme().unwrap().t, 5.0);
        let empty = GridLine { kind: FixedKind::FixedT, fixed_clients: 0, points: vec![] };
        assert!(empty.extreme().is_none());
    }
}
