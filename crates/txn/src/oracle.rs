//! Logical timestamps and the commit-installation protocol.
//!
//! Versions in the MVCC row store are stamped with a *commit timestamp*
//! drawn from a global counter. A reader's snapshot is the highest timestamp
//! whose transaction is fully installed; because installation happens inside
//! a short critical section ([`TsOracle::begin_commit`]), the visible prefix
//! of commit timestamps is always contiguous and a snapshot can never
//! observe half of a transaction.
//!
//! This mirrors the commit serialization points of real systems (PostgreSQL
//! advances its visibility horizon under `ProcArrayLock`; Hekaton finalizes
//! versions through an atomic commit-record step). The critical section only
//! covers version *installation* (a handful of pointer writes), not
//! transaction logic, so it is short — but it is a genuine shared resource
//! that contributes to the T-vs-T interference the benchmark measures.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard};

/// A logical timestamp. `0` is reserved for "before any transaction"; the
/// initial bulk load commits at timestamp `1`.
pub type Ts = u64;

/// Timestamp reserved for initially loaded data.
pub const LOAD_TS: Ts = 1;

/// Allocates begin/commit timestamps and serializes commit installation.
#[derive(Debug)]
pub struct TsOracle {
    /// Highest fully installed commit timestamp.
    last_committed: AtomicU64,
    /// Serializes commit installation (held by [`CommitGuard`]).
    commit_lock: Mutex<()>,
}

impl TsOracle {
    /// A fresh oracle whose visibility horizon covers only the bulk load.
    pub fn new() -> Self {
        TsOracle {
            last_committed: AtomicU64::new(LOAD_TS),
            commit_lock: Mutex::new(()),
        }
    }

    /// The snapshot timestamp a new reader/transaction should use: every
    /// commit with `ts <= read_ts()` is fully installed and visible.
    #[inline]
    pub fn read_ts(&self) -> Ts {
        self.last_committed.load(Ordering::Acquire)
    }

    /// Enters the commit critical section and allocates the next commit
    /// timestamp. Version installation must happen while the returned guard
    /// is alive; dropping the guard *without* calling
    /// [`CommitGuard::finish`] abandons the timestamp (the horizon still
    /// advances, over an empty transaction), which is harmless.
    pub fn begin_commit(&self) -> CommitGuard<'_> {
        let guard = self.commit_lock.lock();
        let ts = self.last_committed.load(Ordering::Relaxed) + 1;
        CommitGuard { oracle: self, ts, _guard: guard }
    }

    /// Restores the visibility horizon after crash recovery: every
    /// replayed commit with `ts <= horizon` is installed, so new
    /// transactions must snapshot at (and allocate past) it. Only moves
    /// forward; must run before any traffic.
    pub fn advance_to(&self, horizon: Ts) {
        let _guard = self.commit_lock.lock();
        if self.last_committed.load(Ordering::Relaxed) < horizon {
            self.last_committed.store(horizon, Ordering::Release);
        }
    }
}

impl Default for TsOracle {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII token for the commit critical section. See
/// [`TsOracle::begin_commit`].
#[must_use = "installation must happen while the guard is alive"]
pub struct CommitGuard<'a> {
    oracle: &'a TsOracle,
    ts: Ts,
    _guard: MutexGuard<'a, ()>,
}

impl CommitGuard<'_> {
    /// The commit timestamp allocated to this transaction.
    #[inline]
    pub fn ts(&self) -> Ts {
        self.ts
    }

    /// Publishes the commit: advances the visibility horizon so snapshots
    /// taken from now on see this transaction. Consumes the guard.
    pub fn finish(self) {
        // Store-release pairs with the load-acquire in `read_ts`; monotonic
        // because commits are serialized by the mutex held in `_guard`.
        self.oracle.last_committed.store(self.ts, Ordering::Release);
    }
}

impl Drop for CommitGuard<'_> {
    fn drop(&mut self) {
        // If `finish` ran, this store is a no-op re-publication of the same
        // value ordering-wise (finish stored ts already). If the guard was
        // abandoned (install failed before any version was written), we
        // still advance the horizon past the burned timestamp so later
        // commits remain contiguous.
        let cur = self.oracle.last_committed.load(Ordering::Relaxed);
        if cur < self.ts {
            self.oracle.last_committed.store(self.ts, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_oracle_sees_load() {
        let o = TsOracle::new();
        assert_eq!(o.read_ts(), LOAD_TS);
    }

    #[test]
    fn commit_advances_horizon() {
        let o = TsOracle::new();
        let g = o.begin_commit();
        let ts = g.ts();
        assert_eq!(ts, LOAD_TS + 1);
        // Not yet visible while installing.
        assert_eq!(o.read_ts(), LOAD_TS);
        g.finish();
        assert_eq!(o.read_ts(), ts);
    }

    #[test]
    fn abandoned_guard_burns_timestamp() {
        let o = TsOracle::new();
        {
            let _g = o.begin_commit();
            // dropped without finish
        }
        assert_eq!(o.read_ts(), LOAD_TS + 1, "horizon still advances");
        let g = o.begin_commit();
        assert_eq!(g.ts(), LOAD_TS + 2);
        g.finish();
    }

    #[test]
    fn concurrent_commits_are_contiguous_and_unique() {
        let o = Arc::new(TsOracle::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let o = Arc::clone(&o);
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..200 {
                    let g = o.begin_commit();
                    seen.push(g.ts());
                    g.finish();
                }
                seen
            }));
        }
        let mut all: Vec<Ts> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<Ts> = (LOAD_TS + 1..=LOAD_TS + 1600).collect();
        assert_eq!(all, expect, "timestamps dense and unique");
        assert_eq!(o.read_ts(), LOAD_TS + 1600);
    }

    #[test]
    fn advance_to_moves_horizon_forward_only() {
        let o = TsOracle::new();
        o.advance_to(17);
        assert_eq!(o.read_ts(), 17);
        o.advance_to(5);
        assert_eq!(o.read_ts(), 17, "never moves backwards");
        let g = o.begin_commit();
        assert_eq!(g.ts(), 18, "allocation continues past the recovered horizon");
        g.finish();
    }

    #[test]
    fn snapshot_never_sees_uninstalled_commit() {
        // While a guard is held, read_ts must stay below the guard's ts.
        let o = Arc::new(TsOracle::new());
        let g = o.begin_commit();
        let ts = g.ts();
        let o2 = Arc::clone(&o);
        let reader = std::thread::spawn(move || o2.read_ts());
        assert!(reader.join().unwrap() < ts);
        g.finish();
        assert_eq!(o.read_ts(), ts);
    }
}
