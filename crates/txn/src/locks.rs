//! Sharded per-row write locks with pluggable conflict policies.
//!
//! Writers lock each row before buffering an update. Two deadlock-free
//! policies are provided:
//!
//! * [`LockPolicy::NoWait`] (default) — a conflicting acquisition aborts
//!   immediately (first-updater-wins); the HATtrick client driver retries
//!   with fresh inputs. Contention shows up as aborts, the signal the
//!   small-scale-factor experiments in the paper rely on (§6.2).
//! * [`LockPolicy::WaitDie`] — an *older* transaction (smaller id) waits
//!   for the holder; a *younger* one dies. Contention shows up as waiting
//!   time instead of aborts, matching the paper's description of
//!   lock-based systems ("due to locking leads to increased waiting
//!   times"). The locking-policy ablation bench compares the two.
//!
//! The table is sharded to keep lock acquisition cheap under concurrency.

use std::collections::HashMap;
use std::time::Duration;

use hat_common::{HatError, Result, TableId};
use parking_lot::{Condvar, Mutex};

/// Identifies a lockable row: `(table, row id)`.
pub type LockKey = (TableId, u64);

/// Transaction identifier used as lock owner. Ids are allocated
/// monotonically, so a smaller id means an older transaction.
pub type OwnerId = u64;

const SHARD_COUNT: usize = 64;

/// How a conflicting lock acquisition behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockPolicy {
    /// Abort the requester immediately.
    #[default]
    NoWait,
    /// Older requesters wait for the holder; younger requesters abort.
    WaitDie,
}

impl LockPolicy {
    /// Label used in reports and ablation benches.
    pub fn label(self) -> &'static str {
        match self {
            LockPolicy::NoWait => "no-wait",
            LockPolicy::WaitDie => "wait-die",
        }
    }
}

/// Upper bound on a wait-die wait, as a deadlock/livelock backstop. A wait
/// this long under the HATtrick workload means the holder's client died;
/// the waiter aborts retryably.
const WAIT_DIE_TIMEOUT: Duration = Duration::from_millis(500);

struct Shard {
    held: Mutex<HashMap<LockKey, OwnerId>>,
    released: Condvar,
}

/// A sharded row-lock table.
pub struct LockManager {
    shards: Vec<Shard>,
    policy: LockPolicy,
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager").field("policy", &self.policy).finish()
    }
}

impl LockManager {
    /// Creates an empty no-wait lock table.
    pub fn new() -> Self {
        Self::with_policy(LockPolicy::NoWait)
    }

    /// Creates an empty lock table with the given policy.
    pub fn with_policy(policy: LockPolicy) -> Self {
        LockManager {
            shards: (0..SHARD_COUNT)
                .map(|_| Shard { held: Mutex::new(HashMap::new()), released: Condvar::new() })
                .collect(),
            policy,
        }
    }

    /// The active conflict policy.
    pub fn policy(&self) -> LockPolicy {
        self.policy
    }

    #[inline]
    fn shard(&self, key: &LockKey) -> &Shard {
        // Cheap multiplicative hash over (table, rid).
        let h = (key.0.index() as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(key.1)
            .wrapping_mul(0xD1B54A32D192ED03);
        &self.shards[(h >> 32) as usize % SHARD_COUNT]
    }

    /// Attempts to acquire a write lock on `key` for `owner`.
    ///
    /// Re-acquisition by the same owner succeeds (and is idempotent). On
    /// conflict the policy decides: `NoWait` returns
    /// [`HatError::WriteConflict`]; `WaitDie` blocks if `owner` is older
    /// than the holder (then acquires) and aborts if younger.
    pub fn try_lock(&self, key: LockKey, owner: OwnerId) -> Result<()> {
        let shard = self.shard(&key);
        let mut held = shard.held.lock();
        loop {
            match held.get(&key) {
                None => {
                    held.insert(key, owner);
                    return Ok(());
                }
                Some(&holder) if holder == owner => return Ok(()),
                Some(&holder) => match self.policy {
                    LockPolicy::NoWait => {
                        return Err(HatError::WriteConflict { table: key.0.name() })
                    }
                    LockPolicy::WaitDie => {
                        if owner < holder {
                            // Older waits. Deadlock-free: waits only ever
                            // point from older to younger, and the younger
                            // side never waits.
                            let timed_out = shard
                                .released
                                .wait_for(&mut held, WAIT_DIE_TIMEOUT)
                                .timed_out();
                            if timed_out && held.get(&key).is_some_and(|h| *h != owner) {
                                return Err(HatError::WriteConflict {
                                    table: key.0.name(),
                                });
                            }
                            // Re-check the slot and loop.
                        } else {
                            // Younger dies.
                            return Err(HatError::WriteConflict { table: key.0.name() });
                        }
                    }
                },
            }
        }
    }

    /// Releases one lock if held by `owner`.
    pub fn unlock(&self, key: LockKey, owner: OwnerId) {
        let shard = self.shard(&key);
        let mut held = shard.held.lock();
        if held.get(&key) == Some(&owner) {
            held.remove(&key);
            shard.released.notify_all();
        }
    }

    /// Releases every lock in `keys` held by `owner` (commit/abort path).
    pub fn unlock_all(&self, keys: &[LockKey], owner: OwnerId) {
        for key in keys {
            self.unlock(*key, owner);
        }
    }

    /// Whether `key` is currently write-locked by a transaction other
    /// than `owner`. Serializable validation uses this as the Silo-style
    /// second check: a read is valid only if the row's version is
    /// unchanged *and* no concurrent writer holds its lock — without it,
    /// two cross-shard committers could validate stale reads of each
    /// other's still-uninstalled writes (write skew).
    pub fn held_by_other(&self, key: &LockKey, owner: OwnerId) -> bool {
        self.shard(key).held.lock().get(key).is_some_and(|h| *h != owner)
    }

    /// Number of locks currently held (test/diagnostic helper; takes every
    /// shard lock).
    pub fn held_count(&self) -> usize {
        self.shards.iter().map(|s| s.held.lock().len()).sum()
    }
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T: TableId = TableId::Customer;

    #[test]
    fn basic_lock_unlock() {
        let lm = LockManager::new();
        lm.try_lock((T, 1), 100).unwrap();
        assert_eq!(lm.held_count(), 1);
        lm.unlock((T, 1), 100);
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn conflict_is_no_wait() {
        let lm = LockManager::new();
        lm.try_lock((T, 1), 100).unwrap();
        let err = lm.try_lock((T, 1), 200).unwrap_err();
        assert!(err.is_retryable());
        assert!(matches!(err, HatError::WriteConflict { table: "customer" }));
    }

    #[test]
    fn reacquisition_by_owner_is_idempotent() {
        let lm = LockManager::new();
        lm.try_lock((T, 1), 100).unwrap();
        lm.try_lock((T, 1), 100).unwrap();
        assert_eq!(lm.held_count(), 1);
    }

    #[test]
    fn unlock_by_non_owner_is_ignored() {
        let lm = LockManager::new();
        lm.try_lock((T, 1), 100).unwrap();
        lm.unlock((T, 1), 999);
        assert_eq!(lm.held_count(), 1, "non-owner cannot release");
    }

    #[test]
    fn same_rid_different_tables_do_not_conflict() {
        let lm = LockManager::new();
        lm.try_lock((TableId::Customer, 7), 1).unwrap();
        lm.try_lock((TableId::Supplier, 7), 2).unwrap();
        assert_eq!(lm.held_count(), 2);
    }

    #[test]
    fn unlock_all_releases_everything() {
        let lm = LockManager::new();
        let keys: Vec<LockKey> = (0..50).map(|i| (T, i)).collect();
        for k in &keys {
            lm.try_lock(*k, 5).unwrap();
        }
        lm.unlock_all(&keys, 5);
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn wait_die_younger_dies() {
        let lm = LockManager::with_policy(LockPolicy::WaitDie);
        lm.try_lock((T, 1), 10).unwrap();
        // Younger (larger id) requester dies immediately.
        let err = lm.try_lock((T, 1), 20).unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(lm.policy().label(), "wait-die");
    }

    #[test]
    fn wait_die_older_waits_until_release() {
        let lm = Arc::new(LockManager::with_policy(LockPolicy::WaitDie));
        lm.try_lock((T, 1), 20).unwrap();
        let lm2 = Arc::clone(&lm);
        // Older (smaller id) requester blocks, then acquires.
        let waiter = std::thread::spawn(move || {
            lm2.try_lock((T, 1), 10).unwrap();
            lm2.unlock((T, 1), 10);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        lm.unlock((T, 1), 20);
        waiter.join().unwrap();
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn wait_die_has_no_deadlocks_under_crossing_requests() {
        // Two keys, two transactions locking in opposite orders: wait-die
        // must resolve (the younger one dies somewhere).
        let lm = Arc::new(LockManager::with_policy(LockPolicy::WaitDie));
        let lm1 = Arc::clone(&lm);
        let lm2 = Arc::clone(&lm);
        let t1 = std::thread::spawn(move || {
            let mut aborts = 0;
            for round in 0..200u64 {
                let me = 1000 + round * 2; // even ids
                if lm1.try_lock((T, 1), me).is_ok() {
                    if lm1.try_lock((T, 2), me).is_err() {
                        aborts += 1;
                    }
                    lm1.unlock_all(&[(T, 1), (T, 2)], me);
                } else {
                    aborts += 1;
                }
            }
            aborts
        });
        let t2 = std::thread::spawn(move || {
            let mut aborts = 0;
            for round in 0..200u64 {
                let me = 1001 + round * 2; // odd ids
                if lm2.try_lock((T, 2), me).is_ok() {
                    if lm2.try_lock((T, 1), me).is_err() {
                        aborts += 1;
                    }
                    lm2.unlock_all(&[(T, 1), (T, 2)], me);
                } else {
                    aborts += 1;
                }
            }
            aborts
        });
        // Completion within the test timeout IS the assertion.
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn concurrent_lockers_exclusive() {
        // 8 threads fight over 16 rows; at most one holder per row wins
        // per round, and the lock table is empty at the end.
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for owner in 0..8u64 {
            let lm = Arc::clone(&lm);
            handles.push(std::thread::spawn(move || {
                let mut wins = 0;
                for round in 0..1000u64 {
                    let key = (T, round % 16);
                    if lm.try_lock(key, owner).is_ok() {
                        wins += 1;
                        lm.unlock(key, owner);
                    }
                }
                wins
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(lm.held_count(), 0);
    }
}
