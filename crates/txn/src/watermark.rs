//! A waitable timestamp watermark.
//!
//! Used for replication apply horizons: the replay/learner thread
//! [`Watermark::advance`]s as it applies records, replica queries read
//! [`Watermark::get`] for their snapshot, and `remote_apply` commits /
//! learner read-index waits block in [`Watermark::wait_for`].

use parking_lot::{Condvar, Mutex};

use crate::oracle::Ts;

/// A monotonically advancing timestamp others can wait on.
///
/// ```
/// use hat_txn::Watermark;
/// use std::sync::Arc;
///
/// let applied = Arc::new(Watermark::new(0));
/// let replica = Arc::clone(&applied);
/// let replay = std::thread::spawn(move || replica.advance(5));
/// applied.wait_for(5); // blocks until the replay thread catches up
/// replay.join().unwrap();
/// assert_eq!(applied.get(), 5);
/// ```
#[derive(Debug)]
pub struct Watermark {
    value: Mutex<Ts>,
    cond: Condvar,
}

impl Watermark {
    /// A watermark starting at `initial`.
    pub fn new(initial: Ts) -> Self {
        Watermark { value: Mutex::new(initial), cond: Condvar::new() }
    }

    /// The current value.
    pub fn get(&self) -> Ts {
        *self.value.lock()
    }

    /// Advances to `ts` (no-op if already past) and wakes waiters.
    pub fn advance(&self, ts: Ts) {
        let mut v = self.value.lock();
        if ts > *v {
            *v = ts;
            self.cond.notify_all();
        }
    }

    /// Blocks until the watermark reaches `ts`.
    pub fn wait_for(&self, ts: Ts) {
        let mut v = self.value.lock();
        while *v < ts {
            self.cond.wait(&mut v);
        }
    }

    /// Blocks until the watermark reaches `ts` or the timeout elapses.
    /// Returns whether the target was reached.
    pub fn wait_for_timeout(&self, ts: Ts, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut v = self.value.lock();
        while *v < ts {
            if self.cond.wait_until(&mut v, deadline).timed_out() {
                return *v >= ts;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn advance_is_monotonic() {
        let w = Watermark::new(5);
        w.advance(3);
        assert_eq!(w.get(), 5, "cannot go backwards");
        w.advance(9);
        assert_eq!(w.get(), 9);
    }

    #[test]
    fn wait_for_returns_immediately_when_reached() {
        let w = Watermark::new(10);
        w.wait_for(10);
        w.wait_for(3);
    }

    #[test]
    fn wait_for_blocks_until_advanced() {
        let w = Arc::new(Watermark::new(0));
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || {
            w2.wait_for(7);
            w2.get()
        });
        std::thread::sleep(Duration::from_millis(10));
        w.advance(4);
        std::thread::sleep(Duration::from_millis(10));
        w.advance(7);
        assert!(t.join().unwrap() >= 7);
    }

    #[test]
    fn wait_timeout_expires() {
        let w = Watermark::new(0);
        let reached = w.wait_for_timeout(5, Duration::from_millis(20));
        assert!(!reached);
        w.advance(5);
        assert!(w.wait_for_timeout(5, Duration::from_millis(20)));
    }
}
