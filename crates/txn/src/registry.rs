//! Active-snapshot registry: the safe prune horizon for MVCC vacuum.
//!
//! Every transaction begin and every analytical query takes an RAII
//! [`SnapshotGuard`] stamped with its snapshot timestamp. A background
//! vacuum pass asks the registry for the *safe horizon* — the oldest
//! timestamp any live reader might still dereference — and prunes version
//! chains below it. This is the standard MVCC reclamation rule (PostgreSQL's
//! `oldest xmin`, Hekaton's active-transaction map): a long analytical
//! snapshot holds the horizon back, and releasing it resumes reclamation.
//!
//! The registry sits on the transaction hot path, so it is striped and
//! atomic rather than a global mutex: registration is a handful of
//! compare-exchange attempts on a thread-striped slot array, and the
//! scan in [`SnapshotRegistry::min_active_ts`] is a few hundred relaxed
//! loads — cheap for a vacuum thread that runs every few milliseconds.
//!
//! ## The registration race
//!
//! A reader that picks its snapshot timestamp *before* publishing it races
//! with vacuum: between the pick and the publish, commits can advance the
//! frontier and a vacuum pass (seeing no active snapshot) could prune the
//! very versions the reader is about to read. The classic fix is a
//! store/load handshake (Dekker-style, both sides `SeqCst`):
//!
//! * **Readers** publish their timestamp into a slot, *then* check the
//!   advertised horizon. If the horizon already passed their timestamp they
//!   clear the slot and retry with a fresh (necessarily newer) timestamp.
//! * **Vacuum** advertises its candidate horizon first, *then* scans the
//!   slots and lowers the candidate to the oldest active snapshot it finds —
//!   and finally settles the advertisement at that actual horizon, so
//!   readers legitimately below the frontier (pinned snapshots) are not
//!   told to retry against a value nothing was pruned at.
//!
//! The `SeqCst` total order guarantees at least one side sees the other:
//! either vacuum's scan observes the reader's slot (and keeps its versions),
//! or the reader observes the advertised horizon (and retries). Pruning at
//! horizon `h` is safe for every snapshot at `ts >= h` because
//! `RowStore::prune` keeps the version visible *at* `h` along with
//! everything newer.
//!
//! ## The load snapshot is exempt
//!
//! Guards at `ts <= LOAD_TS` neither retry nor hold the horizon back. The
//! store contractually never reclaims load-time base versions (hat-storage's
//! `BASE_TS` keep-base rule, which benchmark reset depends on), so a reader
//! at the load snapshot is safe under *any* prune horizon — this is what
//! lets a copy-on-write engine rewind its published snapshot to `LOAD_TS`
//! on reset without a covering guard, and lets freshly-begun sessions on an
//! idle database (where `read_ts() == LOAD_TS`) register without spinning
//! against an advertised horizon.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::oracle::{Ts, LOAD_TS};

/// Stripe count; each stripe has [`SLOTS_PER_STRIPE`] slots. 8×64 = 512
/// concurrent snapshots before the (mutex-protected) overflow list kicks
/// in — far above the harness's client counts, so the overflow path is a
/// correctness backstop, not a steady state.
const STRIPES: usize = 8;
const SLOTS_PER_STRIPE: usize = 64;

/// Slot value meaning "free". Timestamp `0` is reserved for "before any
/// transaction" (real snapshots are `>= LOAD_TS = 1`), so it doubles as
/// the sentinel.
const FREE: u64 = 0;

struct Stripe {
    slots: [AtomicU64; SLOTS_PER_STRIPE],
}

impl Stripe {
    fn new() -> Self {
        Stripe { slots: std::array::from_fn(|_| AtomicU64::new(FREE)) }
    }
}

/// Where a guard parked its timestamp.
enum SlotLoc {
    /// `stripes[stripe].slots[slot]`.
    Striped { stripe: usize, slot: usize },
    /// Entry in the overflow list, keyed by a unique id.
    Overflow(u64),
}

/// Tracks the snapshot timestamps of all live readers. One registry per
/// independent [`RowStore`](../hat_storage) database: the primary kernel
/// owns one, and each replica/learner copy owns its own (replicas prune at
/// their *applied* watermark, not the primary frontier).
pub struct SnapshotRegistry {
    stripes: Box<[Stripe]>,
    /// Spill list for the (unexpected) case of more than `STRIPES *
    /// SLOTS_PER_STRIPE` concurrent snapshots: `(id, ts)` pairs.
    overflow: Mutex<Vec<(u64, Ts)>>,
    overflow_ids: AtomicU64,
    /// The horizon a reader must not register below. During a vacuum
    /// pass this is the pass's unclamped *candidate* (the Dekker
    /// handshake requires advertising before scanning); between passes it
    /// settles at the horizon actually pruned, so readers at pinned
    /// timestamps below the frontier (CoW snapshots, replica queries)
    /// pass the check instead of spinning against a value nothing was
    /// pruned at.
    advertised: AtomicU64,
    /// Serializes vacuum passes and carries the floor: the highest
    /// horizon any pass has pruned at, which `advertised` must never
    /// settle below.
    vacuum_serial: Mutex<Ts>,
}

impl std::fmt::Debug for SnapshotRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotRegistry")
            .field("active", &self.active_snapshots())
            .field("min_active_ts", &self.min_active_ts())
            .field("advertised", &self.advertised.load(Ordering::Relaxed))
            .finish()
    }
}

thread_local! {
    /// Per-thread stripe preference so threads don't all hammer stripe 0.
    static STRIPE_HINT: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn stripe_hint() -> usize {
    STRIPE_HINT.with(|h| {
        let mut v = h.get();
        if v == usize::MAX {
            // Derive a stable per-thread stripe from a stack address: the
            // low bits past cache-line granularity differ across threads.
            let probe = 0u8;
            v = (&probe as *const u8 as usize) >> 7;
            h.set(v);
        }
        v
    })
}

impl SnapshotRegistry {
    pub fn new() -> Self {
        SnapshotRegistry {
            stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
            overflow: Mutex::new(Vec::new()),
            overflow_ids: AtomicU64::new(1),
            advertised: AtomicU64::new(0),
            vacuum_serial: Mutex::new(0),
        }
    }

    /// Registers an active snapshot, asking `frontier` for the candidate
    /// timestamp and retrying (with a fresh, necessarily newer candidate)
    /// if a concurrent vacuum pass already advertised a horizon past it.
    /// This is the entry point for transaction begins and analytical
    /// queries; `frontier` is typically `|| oracle.read_ts()` or a
    /// replica's `|| applied.get()`.
    pub fn register_with(
        self: &Arc<Self>,
        mut frontier: impl FnMut() -> Ts,
    ) -> SnapshotGuard {
        loop {
            let ts = frontier();
            let guard = self.publish(ts);
            // SeqCst load pairs with the SeqCst advertise in
            // `prune_horizon`: if vacuum's slot scan missed our publish,
            // we are guaranteed to see its advertised horizon here. The
            // load snapshot is exempt — base versions are never pruned.
            if ts <= LOAD_TS || self.advertised.load(Ordering::SeqCst) <= ts {
                return guard;
            }
            // Vacuum already passed this timestamp; its versions may be
            // gone. Drop the slot and re-read the frontier — it has
            // necessarily advanced to at least the advertised horizon.
            drop(guard);
        }
    }

    /// Registers a snapshot at an exact timestamp **already covered by a
    /// live guard** (e.g. re-pinning a copy-on-write snapshot while the
    /// previous pin is still held, or a query at a timestamp pinned by the
    /// engine's standing guard). The covering pin is what makes the
    /// no-retry registration safe; debug builds assert it.
    pub fn register_pinned(self: &Arc<Self>, ts: Ts) -> SnapshotGuard {
        debug_assert!(
            ts <= LOAD_TS || self.min_active_ts().is_some_and(|m| m <= ts),
            "register_pinned({ts}) with no live covering guard at or below it"
        );
        self.publish(ts)
    }

    /// Parks `ts` in a free slot (or the overflow list) and returns its
    /// guard. `SeqCst` on the slot store is half of the Dekker handshake
    /// with `prune_horizon`.
    fn publish(self: &Arc<Self>, ts: Ts) -> SnapshotGuard {
        debug_assert!(ts >= 1, "timestamp 0 is the free-slot sentinel");
        let start = stripe_hint();
        for i in 0..STRIPES {
            let stripe_idx = (start + i) % STRIPES;
            let stripe = &self.stripes[stripe_idx];
            for (slot_idx, slot) in stripe.slots.iter().enumerate() {
                if slot
                    .compare_exchange(FREE, ts, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    return SnapshotGuard {
                        registry: Arc::clone(self),
                        loc: SlotLoc::Striped { stripe: stripe_idx, slot: slot_idx },
                        ts,
                    };
                }
            }
        }
        // All 512 slots busy: fall back to the mutex-protected spill list.
        let id = self.overflow_ids.fetch_add(1, Ordering::Relaxed);
        self.overflow.lock().push((id, ts));
        // The mutex release orders the push; the fence makes the publish
        // visible to `prune_horizon`'s SeqCst scan like a slot store.
        std::sync::atomic::fence(Ordering::SeqCst);
        SnapshotGuard { registry: Arc::clone(self), loc: SlotLoc::Overflow(id), ts }
    }

    /// The oldest snapshot timestamp currently registered, if any.
    pub fn min_active_ts(&self) -> Option<Ts> {
        let mut min: Option<Ts> = None;
        for stripe in self.stripes.iter() {
            for slot in &stripe.slots {
                let v = slot.load(Ordering::SeqCst);
                if v != FREE {
                    min = Some(min.map_or(v, |m: Ts| m.min(v)));
                }
            }
        }
        for &(_, ts) in self.overflow.lock().iter() {
            min = Some(min.map_or(ts, |m: Ts| m.min(ts)));
        }
        min
    }

    /// Like [`Self::min_active_ts`] but ignoring guards at the load
    /// snapshot (`ts <= LOAD_TS`): those readers only dereference base
    /// versions, which the store never reclaims, so they must not hold
    /// the vacuum horizon back.
    fn min_holding_ts(&self) -> Option<Ts> {
        let mut min: Option<Ts> = None;
        for stripe in self.stripes.iter() {
            for slot in &stripe.slots {
                let v = slot.load(Ordering::SeqCst);
                if v > LOAD_TS {
                    min = Some(min.map_or(v, |m: Ts| m.min(v)));
                }
            }
        }
        for &(_, ts) in self.overflow.lock().iter() {
            if ts > LOAD_TS {
                min = Some(min.map_or(ts, |m: Ts| m.min(ts)));
            }
        }
        min
    }

    /// Number of currently registered snapshots (telemetry/tests).
    pub fn active_snapshots(&self) -> usize {
        let striped: usize = self
            .stripes
            .iter()
            .flat_map(|s| s.slots.iter())
            .filter(|s| s.load(Ordering::Relaxed) != FREE)
            .count();
        striped + self.overflow.lock().len()
    }

    /// Computes the safe prune horizon for a vacuum pass: advertises the
    /// caller-clamped `frontier` (visibility horizon, possibly lowered to
    /// the durable checkpoint under `Fsync`), then scans active snapshots
    /// and returns the lower of the two. Pruning at the returned value is
    /// safe for every current and future reader. Passes serialize on an
    /// internal mutex (readers never touch it), and the returned horizon
    /// is monotone: it never drops below what an earlier pass pruned at,
    /// even if the caller's frontier regresses.
    pub fn prune_horizon(&self, frontier: Ts) -> Ts {
        let mut floor = self.vacuum_serial.lock();
        // Advertise before scanning (the other half of the handshake):
        // any reader we miss in the scan below will see this value and
        // retry above it.
        self.advertised.fetch_max(frontier, Ordering::SeqCst);
        let h = match self.min_holding_ts() {
            Some(m) => m.min(frontier),
            None => frontier,
        }
        .max(*floor);
        *floor = h;
        // Settle the advertisement at the actual horizon. Leaving it at
        // the unclamped candidate would make every reader below the
        // frontier — a query against a pinned CoW snapshot, a replica
        // read at its applied watermark — retry forever against a value
        // nothing was pruned at. Settling is safe: `h` covers every
        // horizon ever pruned (the floor), so a reader that passes the
        // check still can't land below reclaimed versions.
        self.advertised.store(h, Ordering::SeqCst);
        h
    }
}

impl Default for SnapshotRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII registration of one active snapshot; dropping it releases the
/// timestamp and lets the vacuum horizon advance past it.
#[must_use = "dropping the guard releases the snapshot's pin on old versions"]
pub struct SnapshotGuard {
    registry: Arc<SnapshotRegistry>,
    loc: SlotLoc,
    ts: Ts,
}

impl SnapshotGuard {
    /// The registered snapshot timestamp. When acquired through
    /// [`SnapshotRegistry::register_with`] this is the timestamp the
    /// reader must use (it may be newer than the first frontier read).
    #[inline]
    pub fn ts(&self) -> Ts {
        self.ts
    }
}

impl std::fmt::Debug for SnapshotGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotGuard").field("ts", &self.ts).finish()
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        match self.loc {
            SlotLoc::Striped { stripe, slot } => {
                self.registry.stripes[stripe].slots[slot].store(FREE, Ordering::SeqCst);
            }
            SlotLoc::Overflow(id) => {
                let mut ov = self.registry.overflow.lock();
                if let Some(pos) = ov.iter().position(|&(i, _)| i == id) {
                    ov.swap_remove(pos);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn empty_registry_prunes_at_frontier() {
        let r = Arc::new(SnapshotRegistry::new());
        assert_eq!(r.min_active_ts(), None);
        assert_eq!(r.prune_horizon(42), 42);
    }

    #[test]
    fn guard_holds_horizon_and_release_resumes() {
        let r = Arc::new(SnapshotRegistry::new());
        let g = r.register_with(|| 10);
        assert_eq!(g.ts(), 10);
        assert_eq!(r.min_active_ts(), Some(10));
        assert_eq!(r.prune_horizon(50), 10, "pinned below the frontier");
        drop(g);
        assert_eq!(r.min_active_ts(), None);
        assert_eq!(r.prune_horizon(50), 50, "release resumes reclamation");
    }

    #[test]
    fn min_across_many_guards() {
        let r = Arc::new(SnapshotRegistry::new());
        let guards: Vec<_> = (5..25).map(|ts| r.register_with(|| ts)).collect();
        assert_eq!(r.min_active_ts(), Some(5));
        assert_eq!(r.active_snapshots(), 20);
        drop(guards);
        assert_eq!(r.active_snapshots(), 0);
    }

    #[test]
    fn retries_past_an_advertised_horizon() {
        let r = Arc::new(SnapshotRegistry::new());
        // A vacuum pass advertised horizon 10.
        assert_eq!(r.prune_horizon(10), 10);
        // A reader whose first frontier read was stale (5) must land on
        // its second, fresher read (12).
        let mut reads = [5u64, 12].into_iter();
        let g = r.register_with(|| reads.next().expect("at most two reads"));
        assert_eq!(g.ts(), 12);
    }

    #[test]
    fn register_pinned_skips_the_retry_check() {
        let r = Arc::new(SnapshotRegistry::new());
        let standing = r.register_with(|| 7);
        assert_eq!(r.prune_horizon(20), 7);
        // A query at the pinned timestamp is covered by the standing
        // guard even though 7 < the frontier.
        let q = r.register_pinned(7);
        drop(standing);
        assert_eq!(r.min_active_ts(), Some(7), "query guard still pins");
        drop(q);
        assert_eq!(r.min_active_ts(), None);
    }

    #[test]
    fn advertisement_settles_at_the_actual_horizon() {
        let r = Arc::new(SnapshotRegistry::new());
        let pin = r.register_with(|| 7);
        assert_eq!(r.prune_horizon(100), 7);
        // A reader at the pinned timestamp (e.g. a CoW query against the
        // engine's standing snapshot) must pass the retry check even
        // though 7 is far below the candidate frontier the pass
        // advertised (100): nothing above 7 was actually pruned.
        let q = r.register_with(|| 7);
        assert_eq!(q.ts(), 7);
        drop((pin, q));
        // With the pins gone the horizon rises to the frontier...
        assert_eq!(r.prune_horizon(100), 100);
        // ...and never regresses below a level already pruned at, even
        // for a caller with a stale frontier.
        assert_eq!(r.prune_horizon(50), 100);
    }

    #[test]
    fn load_snapshot_guards_never_retry_or_hold_the_horizon() {
        let r = Arc::new(SnapshotRegistry::new());
        assert_eq!(r.prune_horizon(40), 40);
        // A reader at the load snapshot registers without retrying even
        // though the horizon already passed it: load-time base versions
        // are never reclaimed (hat-storage's keep-base rule), so the
        // frontier closure is consulted exactly once.
        let g = r.register_with(|| LOAD_TS);
        assert_eq!(g.ts(), LOAD_TS);
        assert_eq!(r.min_active_ts(), Some(LOAD_TS), "still visible to telemetry");
        // ...and it does not hold the horizon back.
        assert_eq!(r.prune_horizon(50), 50);
        drop(g);
        // Re-pinning at LOAD_TS needs no covering guard (CoW reset path).
        let pin = r.register_pinned(LOAD_TS);
        assert_eq!(pin.ts(), LOAD_TS);
    }

    #[test]
    fn overflow_beyond_striped_capacity() {
        let r = Arc::new(SnapshotRegistry::new());
        let n = STRIPES * SLOTS_PER_STRIPE + 40;
        let mut guards: Vec<_> = (0..n).map(|i| r.register_with(|| 100 + i as Ts)).collect();
        assert_eq!(r.active_snapshots(), n);
        assert_eq!(r.min_active_ts(), Some(100));
        // Drop the oldest half (including every overflow entry's
        // potential minimum) and check the min tracks survivors.
        guards.drain(0..n / 2);
        assert_eq!(r.min_active_ts(), Some(100 + (n / 2) as Ts));
        drop(guards);
        assert_eq!(r.active_snapshots(), 0);
    }

    #[test]
    fn concurrent_register_drop_vs_vacuum_never_overruns_a_guard() {
        // Readers register at the current frontier and record (ts,
        // horizon-observed-later); vacuum advances the frontier and takes
        // prune horizons. Invariant: no prune horizon may exceed the
        // timestamp of a guard that was registered when it was computed —
        // checked indirectly: every reader re-validates that the global
        // advertised horizon never passed its own registered ts while the
        // guard was live.
        let r = Arc::new(SnapshotRegistry::new());
        // Start above LOAD_TS: guards at the load snapshot are exempt
        // from the horizon by design, which would trip the check below.
        let frontier = Arc::new(AtomicU64::new(2));
        let stop = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = Arc::clone(&r);
            let frontier = Arc::clone(&frontier);
            let stop = Arc::clone(&stop);
            let violations = Arc::clone(&violations);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let g = r.register_with(|| frontier.load(Ordering::SeqCst));
                    // While the guard lives, no vacuum pass may compute a
                    // horizon above its ts.
                    let h = r.prune_horizon(frontier.load(Ordering::SeqCst));
                    if h > g.ts() {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(g);
                }
            }));
        }
        let vac = {
            let r = Arc::clone(&r);
            let frontier = Arc::clone(&frontier);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Relaxed) {
                    let f = frontier.fetch_add(1, Ordering::SeqCst) + 1;
                    let h = r.prune_horizon(f);
                    assert!(h >= last, "horizon is monotone under a single vacuum");
                    last = h;
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(80));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        vac.join().unwrap();
        assert_eq!(violations.load(Ordering::Relaxed), 0);
        assert_eq!(r.min_active_ts(), None, "all guards released");
    }
}
