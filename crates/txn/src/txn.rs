//! Per-transaction bookkeeping shared by every engine.
//!
//! A [`TxnCtx`] buffers a transaction's writes until commit (no dirty
//! versions are ever visible in a row store), records the read set for
//! serializable validation, and tracks acquired row locks for release on
//! commit or abort.

use std::sync::atomic::{AtomicU64, Ordering};

use hat_common::{Row, TableId};

use crate::locks::LockKey;
use crate::oracle::Ts;
use crate::snapshot::{IsolationLevel, Snapshot};

/// Global transaction-id allocator (ids are process-unique lock owners).
static NEXT_TXN_ID: AtomicU64 = AtomicU64::new(1);

/// A buffered write, applied to the row store only at commit.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Insert a fresh row; the row id is assigned at install time.
    Insert { table: TableId, row: Row },
    /// Replace the current version of `rid` with `row`.
    Update { table: TableId, rid: u64, row: Row },
}

impl WriteOp {
    /// The table this write touches.
    pub fn table(&self) -> TableId {
        match self {
            WriteOp::Insert { table, .. } | WriteOp::Update { table, .. } => *table,
        }
    }
}

/// One entry of the read set: which version of which row was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEntry {
    pub table: TableId,
    pub rid: u64,
    /// Commit timestamp of the version the transaction read.
    pub version_ts: Ts,
}

/// The state of an in-flight transaction.
#[derive(Debug)]
pub struct TxnCtx {
    id: u64,
    isolation: IsolationLevel,
    begin_snapshot: Snapshot,
    reads: Vec<ReadEntry>,
    writes: Vec<WriteOp>,
    locks: Vec<LockKey>,
    closed: bool,
}

impl TxnCtx {
    /// Starts a transaction with the given isolation level reading from
    /// `snapshot_ts`.
    pub fn begin(isolation: IsolationLevel, snapshot_ts: Ts) -> Self {
        TxnCtx {
            id: NEXT_TXN_ID.fetch_add(1, Ordering::Relaxed),
            isolation,
            begin_snapshot: Snapshot::at(snapshot_ts),
            reads: Vec::new(),
            writes: Vec::new(),
            locks: Vec::new(),
            closed: false,
        }
    }

    /// Process-unique id, used as the lock owner.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The transaction's isolation level.
    #[inline]
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// The snapshot taken at begin.
    #[inline]
    pub fn begin_snapshot(&self) -> Snapshot {
        self.begin_snapshot
    }

    /// Whether commit/abort already ran.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Marks the transaction finished (engine calls this from commit/abort).
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Records an observed version for serializable validation. Only
    /// tracked when the isolation level validates reads.
    pub fn record_read(&mut self, table: TableId, rid: u64, version_ts: Ts) {
        if self.isolation.validates_reads() {
            self.reads.push(ReadEntry { table, rid, version_ts });
        }
    }

    /// The recorded read set.
    #[inline]
    pub fn reads(&self) -> &[ReadEntry] {
        &self.reads
    }

    /// Buffers a write for installation at commit.
    pub fn buffer_write(&mut self, op: WriteOp) {
        self.writes.push(op);
    }

    /// The buffered writes, in execution order.
    #[inline]
    pub fn writes(&self) -> &[WriteOp] {
        &self.writes
    }

    /// Whether the transaction wrote anything.
    #[inline]
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Looks up a buffered update of `(table, rid)` so a transaction can
    /// read its own writes; returns the latest buffered version.
    pub fn own_write(&self, table: TableId, rid: u64) -> Option<&Row> {
        self.writes.iter().rev().find_map(|w| match w {
            WriteOp::Update { table: t, rid: r, row } if *t == table && *r == rid => {
                Some(row)
            }
            _ => None,
        })
    }

    /// Remembers an acquired row lock for release at commit/abort.
    pub fn record_lock(&mut self, key: LockKey) {
        self.locks.push(key);
    }

    /// The acquired lock keys.
    #[inline]
    pub fn locks(&self) -> &[LockKey] {
        &self.locks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_common::value::row_from;
    use hat_common::Value;

    fn row(v: u32) -> Row {
        row_from([Value::U32(v)])
    }

    #[test]
    fn ids_are_unique() {
        let a = TxnCtx::begin(IsolationLevel::SnapshotIsolation, 1);
        let b = TxnCtx::begin(IsolationLevel::SnapshotIsolation, 1);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn read_set_only_tracked_for_serializable() {
        let mut si = TxnCtx::begin(IsolationLevel::SnapshotIsolation, 5);
        si.record_read(TableId::Customer, 1, 3);
        assert!(si.reads().is_empty());

        let mut ser = TxnCtx::begin(IsolationLevel::Serializable, 5);
        ser.record_read(TableId::Customer, 1, 3);
        assert_eq!(
            ser.reads(),
            &[ReadEntry { table: TableId::Customer, rid: 1, version_ts: 3 }]
        );
    }

    #[test]
    fn write_buffering_and_own_reads() {
        let mut t = TxnCtx::begin(IsolationLevel::SnapshotIsolation, 5);
        assert!(t.is_read_only());
        t.buffer_write(WriteOp::Update {
            table: TableId::Supplier,
            rid: 9,
            row: row(1),
        });
        t.buffer_write(WriteOp::Update {
            table: TableId::Supplier,
            rid: 9,
            row: row(2),
        });
        t.buffer_write(WriteOp::Insert { table: TableId::History, row: row(3) });
        assert!(!t.is_read_only());
        assert_eq!(t.writes().len(), 3);
        // Own-write lookup returns the latest buffered version.
        let r = t.own_write(TableId::Supplier, 9).unwrap();
        assert_eq!(r[0].as_u32().unwrap(), 2);
        assert!(t.own_write(TableId::Supplier, 8).is_none());
        assert!(t.own_write(TableId::Customer, 9).is_none());
    }

    #[test]
    fn lock_tracking() {
        let mut t = TxnCtx::begin(IsolationLevel::Serializable, 5);
        t.record_lock((TableId::Customer, 4));
        t.record_lock((TableId::Supplier, 2));
        assert_eq!(t.locks().len(), 2);
    }

    #[test]
    fn close_marks_finished() {
        let mut t = TxnCtx::begin(IsolationLevel::ReadCommitted, 5);
        assert!(!t.is_closed());
        t.close();
        assert!(t.is_closed());
    }
}
