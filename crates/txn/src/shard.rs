//! Sharded commit timestamping: N per-shard commit critical sections
//! behind one global visibility horizon.
//!
//! [`TsOracle`](crate::oracle::TsOracle) serializes every commit through a
//! single mutex, which makes the kernel a one-core engine no matter how
//! many clients offer work. [`ShardedOracle`] splits that serialization
//! point: each shard owns its own commit mutex, and transactions that
//! touch a single shard commit entirely under that shard's lock. The
//! global guarantee — *a snapshot never observes half of a transaction,
//! and every commit at or below the snapshot is fully installed* — is
//! preserved by an installing-window protocol instead of a contiguous
//! horizon counter:
//!
//! * one global allocation counter hands out commit timestamps
//!   (`fetch_add`, no lock), and
//! * each shard publishes the timestamp it is *currently installing* in an
//!   atomic slot. A reader's snapshot is the allocation horizon clamped
//!   below every in-flight install: `min(alloc, min_s(installing_s - 1))`.
//!
//! The ordering argument (all marked `SeqCst`): a committer stores the
//! `RESERVED` sentinel into every participant slot *before* it draws its
//! timestamp from the allocator, and clears the slots only *after* every
//! participant's versions are installed. A reader that observes allocation
//! horizon `G` is ordered after the `fetch_add` of every commit with
//! `ts <= G`, hence after those commits' `RESERVED` stores; scanning the
//! slots it must therefore see each still-installing commit's sentinel or
//! timestamp and clamp below it. Conversely, any commit at or below the
//! returned snapshot had cleared its slots before the reader's scan, and
//! that `SeqCst` store (or the shard-mutex handoff to a later commit on
//! the same shard) makes its installed versions visible.
//!
//! Cross-shard transactions take every participant's mutex in ascending
//! shard order (deadlock-free), draw one common timestamp, and install on
//! all shards before clearing any slot — a degenerate two-phase commit
//! where holding a shard's mutex is the prepare vote and the shared
//! timestamp is the decision.
//!
//! [`InstallSequencer`] restores a *global* timestamp-ordered delivery
//! point for engines whose commit hooks ship a totally ordered stream
//! (replication WAL, columnar delta); shared-everything engines skip it
//! and scale freely.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::oracle::{Ts, LOAD_TS};

use hat_common::TableId;

/// Slot sentinel: the shard's mutex is held and a timestamp is about to be
/// allocated. Readers retry (the window is a few instructions wide).
const RESERVED: u64 = u64::MAX;

/// Slot value meaning "no install in flight on this shard".
const IDLE: u64 = 0;

/// Routes rows to commit shards by `(table, rid)` hash — the same
/// multiplicative scheme the lock table stripes with, so a row's lock
/// stripe and commit shard always agree.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    shards: u32,
}

impl ShardRouter {
    /// A router over `shards` commit shards (clamped to at least 1).
    pub fn new(shards: u32) -> Self {
        ShardRouter { shards: shards.max(1) }
    }

    /// Number of shards routed over.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The commit shard owning row `(table, rid)`.
    #[inline]
    pub fn route(&self, table: TableId, rid: u64) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let h = (table.index() as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(rid)
            .wrapping_mul(0xD1B5_4A32_D192_ED03);
        ((h >> 32) % self.shards as u64) as usize
    }
}

struct ShardSlot {
    /// The shard's commit critical section.
    lock: Mutex<()>,
    /// Timestamp currently installing on this shard (`IDLE`, `RESERVED`,
    /// or a commit timestamp).
    installing: AtomicU64,
}

/// A sharded timestamp oracle: per-shard commit critical sections, one
/// global visibility horizon. Drop-in replacement for
/// [`TsOracle`](crate::oracle::TsOracle) in the kernel.
pub struct ShardedOracle {
    /// Highest allocated commit timestamp.
    alloc: AtomicU64,
    slots: Vec<ShardSlot>,
}

impl std::fmt::Debug for ShardedOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOracle")
            .field("shards", &self.slots.len())
            .field("alloc", &self.alloc.load(Ordering::Relaxed))
            .finish()
    }
}

impl ShardedOracle {
    /// A fresh oracle over `shards` commit shards whose horizon covers
    /// only the bulk load.
    pub fn new(shards: u32) -> Self {
        ShardedOracle {
            alloc: AtomicU64::new(LOAD_TS),
            slots: (0..shards.max(1))
                .map(|_| ShardSlot { lock: Mutex::new(()), installing: AtomicU64::new(IDLE) })
                .collect(),
        }
    }

    /// Number of commit shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The snapshot timestamp a new reader/transaction should use: every
    /// commit with `ts <= read_ts()` is fully installed and visible.
    pub fn read_ts(&self) -> Ts {
        'retry: loop {
            // Order matters: load the allocation horizon first, then scan
            // the installing slots (see the module-level ordering argument).
            let horizon = self.alloc.load(Ordering::SeqCst);
            let mut snapshot = horizon;
            for slot in &self.slots {
                match slot.installing.load(Ordering::SeqCst) {
                    IDLE => {}
                    RESERVED => {
                        // A committer holds the shard mutex but has not
                        // drawn its timestamp yet; the window is a few
                        // instructions, spin once and rescan.
                        std::hint::spin_loop();
                        continue 'retry;
                    }
                    installing => snapshot = snapshot.min(installing - 1),
                }
            }
            return snapshot;
        }
    }

    /// Enters the commit critical sections of every shard in
    /// `participants` (must be sorted ascending and deduplicated — the
    /// ascending order is the deadlock-freedom argument) and allocates one
    /// common commit timestamp. Version installation on every participant
    /// must happen while the returned guard is alive; dropping the guard
    /// without [`ShardCommitGuard::finish`] abandons the timestamp, which
    /// is harmless (the horizon skips an empty transaction).
    pub fn begin_commit_on(&self, participants: &[usize]) -> ShardCommitGuard<'_> {
        debug_assert!(!participants.is_empty(), "commit needs at least one shard");
        debug_assert!(
            participants.windows(2).all(|w| w[0] < w[1]),
            "participants must be sorted and unique"
        );
        let mut guards = Vec::with_capacity(participants.len());
        for &s in participants {
            guards.push(self.slots[s].lock.lock());
        }
        // Reserve before allocating: a reader that sees our timestamp on
        // the allocation counter is guaranteed to also see the sentinel
        // (or our timestamp) in every participant slot.
        for &s in participants {
            self.slots[s].installing.store(RESERVED, Ordering::SeqCst);
        }
        let ts = self.alloc.fetch_add(1, Ordering::SeqCst) + 1;
        for &s in participants {
            self.slots[s].installing.store(ts, Ordering::SeqCst);
        }
        ShardCommitGuard { oracle: self, participants: participants.to_vec(), ts, _guards: guards }
    }

    /// Enters *every* shard's commit critical section and allocates one
    /// timestamp: the full-barrier equivalent of
    /// [`TsOracle::begin_commit`](crate::oracle::TsOracle::begin_commit),
    /// used where commits must be globally quiesced (the CoW engine's
    /// snapshot fork, consistent checkpoints).
    pub fn begin_commit(&self) -> ShardCommitGuard<'_> {
        let all: Vec<usize> = (0..self.slots.len()).collect();
        self.begin_commit_on(&all)
    }

    /// Restores the horizon after crash recovery or bulk re-load: every
    /// replayed commit with `ts <= horizon` is installed, so new
    /// transactions must snapshot at (and allocate past) it. Only moves
    /// forward; must run before any traffic.
    pub fn advance_to(&self, horizon: Ts) {
        // Take every shard mutex so no allocation races the adjustment.
        let _guards: Vec<MutexGuard<'_, ()>> =
            self.slots.iter().map(|s| s.lock.lock()).collect();
        if self.alloc.load(Ordering::SeqCst) < horizon {
            self.alloc.store(horizon, Ordering::SeqCst);
        }
    }
}

/// RAII token for a (possibly multi-shard) commit critical section. See
/// [`ShardedOracle::begin_commit_on`].
#[must_use = "installation must happen while the guard is alive"]
pub struct ShardCommitGuard<'a> {
    oracle: &'a ShardedOracle,
    participants: Vec<usize>,
    ts: Ts,
    _guards: Vec<MutexGuard<'a, ()>>,
}

impl ShardCommitGuard<'_> {
    /// The common commit timestamp allocated to this transaction.
    #[inline]
    pub fn ts(&self) -> Ts {
        self.ts
    }

    /// Publishes the commit: clears every participant's installing slot so
    /// snapshots taken from now on see the transaction. Consumes the
    /// guard (releasing the shard mutexes).
    pub fn finish(self) {
        // Drop runs the actual clearing; `finish` exists to mirror
        // `CommitGuard::finish` at call sites and to make the intent —
        // *all* installs done before any slot clears — explicit.
    }
}

impl Drop for ShardCommitGuard<'_> {
    fn drop(&mut self) {
        // Whether finished or abandoned, clear all slots only now, after
        // every participant's installs (if any) completed. The SeqCst
        // stores pair with the reader's slot scan; the mutex release
        // orders us before the shard's next committer.
        for &s in &self.participants {
            self.oracle.slots[s].installing.store(IDLE, Ordering::SeqCst);
        }
    }
}

/// Re-serializes hook delivery into global commit-timestamp order.
///
/// Engines whose commit hooks ship a totally ordered stream (the isolated
/// engine's replication WAL, the hybrid engines' columnar delta) relied on
/// the single-mutex oracle calling `on_install` in timestamp order. Under
/// a sharded oracle, installs on different shards race; commits that need
/// ordered delivery take a ticket here: `wait_turn(ts)` blocks until every
/// smaller allocated timestamp has delivered (or abandoned) its hook, and
/// `advance(ts)` hands the stream to `ts + 1`. Every allocated timestamp
/// must pass through exactly once — abandoned commits advance without
/// delivering — or the stream wedges.
pub struct InstallSequencer {
    next: Mutex<Ts>,
    turn: Condvar,
}

impl std::fmt::Debug for InstallSequencer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstallSequencer").field("next", &*self.next.lock()).finish()
    }
}

impl InstallSequencer {
    /// A sequencer expecting `next` as the first delivered timestamp.
    pub fn new(next: Ts) -> Self {
        InstallSequencer { next: Mutex::new(next), turn: Condvar::new() }
    }

    /// Re-bases the stream after recovery or bulk load: the next delivered
    /// timestamp will be `next`. Must not race in-flight commits.
    pub fn reset(&self, next: Ts) {
        *self.next.lock() = next;
        self.turn.notify_all();
    }

    /// Blocks until it is `ts`'s turn to deliver.
    pub fn wait_turn(&self, ts: Ts) {
        let mut next = self.next.lock();
        while *next != ts {
            self.turn.wait(&mut next);
        }
    }

    /// Hands the stream to `ts + 1`. Call exactly once per allocated
    /// timestamp, after [`wait_turn`](Self::wait_turn).
    pub fn advance(&self, ts: Ts) {
        let mut next = self.next.lock();
        debug_assert_eq!(*next, ts, "sequencer advanced out of turn");
        *next = ts + 1;
        self.turn.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_oracle_sees_load() {
        let o = ShardedOracle::new(4);
        assert_eq!(o.read_ts(), LOAD_TS);
    }

    #[test]
    fn single_shard_commit_advances_horizon() {
        let o = ShardedOracle::new(4);
        let g = o.begin_commit_on(&[2]);
        let ts = g.ts();
        assert_eq!(ts, LOAD_TS + 1);
        assert_eq!(o.read_ts(), LOAD_TS, "not visible while installing");
        g.finish();
        assert_eq!(o.read_ts(), ts);
    }

    #[test]
    fn cross_shard_commit_is_atomic_to_readers() {
        let o = ShardedOracle::new(4);
        let g = o.begin_commit_on(&[0, 3]);
        let ts = g.ts();
        assert!(o.read_ts() < ts, "hidden while installing on any shard");
        g.finish();
        assert_eq!(o.read_ts(), ts);
    }

    #[test]
    fn independent_shards_commit_concurrently() {
        // A commit in flight on shard 1 does not block shard 0's mutex.
        let o = Arc::new(ShardedOracle::new(2));
        let g1 = o.begin_commit_on(&[1]);
        let o2 = Arc::clone(&o);
        let other = std::thread::spawn(move || {
            let g0 = o2.begin_commit_on(&[0]);
            let ts = g0.ts();
            g0.finish();
            ts
        });
        let t0 = other.join().unwrap();
        assert_ne!(t0, g1.ts());
        // Shard 0's commit finished but shard 1's is still installing:
        // the snapshot hides everything from g1's ts upward.
        assert!(o.read_ts() < g1.ts());
        let t1 = g1.ts();
        g1.finish();
        assert_eq!(o.read_ts(), t0.max(t1));
    }

    #[test]
    fn abandoned_guard_burns_timestamp() {
        let o = ShardedOracle::new(2);
        {
            let _g = o.begin_commit_on(&[0]);
            // dropped without finish
        }
        assert_eq!(o.read_ts(), LOAD_TS + 1, "horizon still advances");
        let g = o.begin_commit_on(&[1]);
        assert_eq!(g.ts(), LOAD_TS + 2);
        g.finish();
    }

    #[test]
    fn advance_to_moves_horizon_forward_only() {
        let o = ShardedOracle::new(3);
        o.advance_to(17);
        assert_eq!(o.read_ts(), 17);
        o.advance_to(5);
        assert_eq!(o.read_ts(), 17, "never moves backwards");
        let g = o.begin_commit_on(&[0]);
        assert_eq!(g.ts(), 18, "allocation continues past the recovered horizon");
        g.finish();
    }

    #[test]
    fn concurrent_commits_are_dense_and_unique() {
        let o = Arc::new(ShardedOracle::new(4));
        let mut handles = Vec::new();
        for worker in 0..8usize {
            let o = Arc::clone(&o);
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                for round in 0..200usize {
                    let shard = (worker + round) % 4;
                    let g = o.begin_commit_on(&[shard]);
                    seen.push(g.ts());
                    g.finish();
                }
                seen
            }));
        }
        let mut all: Vec<Ts> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<Ts> = (LOAD_TS + 1..=LOAD_TS + 1600).collect();
        assert_eq!(all, expect, "timestamps dense and unique");
        assert_eq!(o.read_ts(), LOAD_TS + 1600);
    }

    #[test]
    fn snapshot_never_admits_uninstalled_commit_under_race() {
        // Writers commit pairs across two shards; a reader's snapshot must
        // never cover a timestamp whose guard is still alive. We approximate
        // by checking the returned snapshot always sits below any in-flight
        // guard's ts recorded through a side channel.
        let o = Arc::new(ShardedOracle::new(4));
        let in_flight = Arc::new(AtomicU64::new(u64::MAX));
        let stop = Arc::new(AtomicU64::new(0));
        let w = {
            let o = Arc::clone(&o);
            let in_flight = Arc::clone(&in_flight);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let shards = if n.is_multiple_of(3) { vec![1, 3] } else { vec![(n % 4) as usize] };
                    let g = o.begin_commit_on(&shards);
                    in_flight.store(g.ts(), Ordering::SeqCst);
                    std::hint::spin_loop();
                    in_flight.store(u64::MAX, Ordering::SeqCst);
                    g.finish();
                    n += 1;
                }
            })
        };
        for _ in 0..50_000 {
            let snap = o.read_ts();
            let flying = in_flight.load(Ordering::SeqCst);
            if flying != u64::MAX {
                // The guard may have finished between the two loads, so the
                // only sound assertion is against a still-smaller horizon:
                // a snapshot can never reach an *unfinished* ts. If the
                // snapshot covers `flying`, the guard must have finished by
                // now — i.e. the current read_ts must also cover it.
                if snap >= flying {
                    assert!(o.read_ts() >= flying);
                }
            }
        }
        stop.store(1, Ordering::Relaxed);
        w.join().unwrap();
    }

    #[test]
    fn router_spreads_and_is_stable() {
        let r = ShardRouter::new(4);
        let mut hit = [false; 4];
        for rid in 0..64u64 {
            let s = r.route(TableId::Customer, rid);
            assert_eq!(s, r.route(TableId::Customer, rid), "routing is deterministic");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 rids cover all 4 shards");
        let r1 = ShardRouter::new(1);
        assert_eq!(r1.route(TableId::Lineorder, 123), 0);
    }

    #[test]
    fn sequencer_delivers_in_ts_order() {
        let seq = Arc::new(InstallSequencer::new(10));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Deliver 10..20 from scrambled threads.
        for ts in [15u64, 11, 19, 10, 13, 12, 17, 14, 18, 16] {
            let seq = Arc::clone(&seq);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                seq.wait_turn(ts);
                log.lock().push(ts);
                seq.advance(ts);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*log.lock(), (10..20).collect::<Vec<_>>());
    }
}
