//! `hat-txn` — transaction-management building blocks.
//!
//! The engines in `hat-engine` compose these pieces into complete commit
//! protocols:
//!
//! * [`oracle::TsOracle`] — logical-timestamp allocation with a
//!   commit-installation critical section that guarantees readers never
//!   observe a half-installed transaction,
//! * [`snapshot::Snapshot`] / [`IsolationLevel`] — MVCC visibility rules for
//!   read committed, snapshot isolation, and OCC-serializable execution,
//! * [`registry::SnapshotRegistry`] — striped active-snapshot tracking
//!   whose oldest registered timestamp is the safe MVCC vacuum horizon,
//! * [`locks::LockManager`] — sharded per-row no-wait write locks
//!   implementing the first-updater-wins conflict rule,
//! * [`txn::TxnCtx`] — the per-transaction read/write bookkeeping shared by
//!   all engines.

pub mod locks;
pub mod oracle;
pub mod registry;
pub mod shard;
pub mod snapshot;
pub mod watermark;
pub mod txn;

pub use locks::{LockKey, LockManager, LockPolicy};
pub use oracle::{CommitGuard, Ts, TsOracle, LOAD_TS};
pub use shard::{InstallSequencer, ShardCommitGuard, ShardRouter, ShardedOracle};
pub use registry::{SnapshotGuard, SnapshotRegistry};
pub use snapshot::{IsolationLevel, Snapshot};
pub use txn::{ReadEntry, TxnCtx, WriteOp};
pub use watermark::Watermark;
