//! Snapshots and isolation levels.

use crate::oracle::Ts;

/// The isolation levels the engines support, matching the configurations
/// evaluated in the paper (§6.2 varies serializable vs read committed for
/// PostgreSQL; TiDB runs snapshot-isolated reads; System-X runs serializable
/// via optimistic MVCC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IsolationLevel {
    /// Each *statement* reads the latest committed data. Lost updates
    /// between statements are possible, as in SQL `READ COMMITTED`.
    ReadCommitted,
    /// The whole transaction reads one snapshot taken at begin; writes use
    /// the first-updater-wins rule.
    #[default]
    SnapshotIsolation,
    /// Snapshot isolation plus commit-time read validation (OCC "read
    /// stability"): commit fails if any row read by the transaction was
    /// re-written by a concurrent committer.
    Serializable,
}

impl IsolationLevel {
    /// Whether reads within a transaction all use the begin snapshot.
    #[inline]
    pub fn uses_begin_snapshot(self) -> bool {
        !matches!(self, IsolationLevel::ReadCommitted)
    }

    /// Whether commit must validate the read set.
    #[inline]
    pub fn validates_reads(self) -> bool {
        matches!(self, IsolationLevel::Serializable)
    }

    /// Short label used in reports and figure legends.
    pub fn label(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "read-committed",
            IsolationLevel::SnapshotIsolation => "snapshot-isolation",
            IsolationLevel::Serializable => "serializable",
        }
    }
}

/// An MVCC snapshot: everything committed at or before `ts` is visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    pub ts: Ts,
}

impl Snapshot {
    /// Creates a snapshot at `ts`.
    #[inline]
    pub fn at(ts: Ts) -> Self {
        Snapshot { ts }
    }

    /// Whether a version committed at `version_ts` is visible.
    #[inline]
    pub fn sees(&self, version_ts: Ts) -> bool {
        version_ts <= self.ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_rule() {
        let s = Snapshot::at(10);
        assert!(s.sees(1));
        assert!(s.sees(10));
        assert!(!s.sees(11));
    }

    #[test]
    fn isolation_properties() {
        assert!(!IsolationLevel::ReadCommitted.uses_begin_snapshot());
        assert!(IsolationLevel::SnapshotIsolation.uses_begin_snapshot());
        assert!(IsolationLevel::Serializable.uses_begin_snapshot());
        assert!(IsolationLevel::Serializable.validates_reads());
        assert!(!IsolationLevel::SnapshotIsolation.validates_reads());
        assert_eq!(IsolationLevel::default(), IsolationLevel::SnapshotIsolation);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            IsolationLevel::ReadCommitted.label(),
            IsolationLevel::SnapshotIsolation.label(),
            IsolationLevel::Serializable.label(),
        ];
        assert_eq!(
            labels.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
