//! The global benchmark clock used for freshness measurement.
//!
//! The paper's theoretical freshness definition (§4.1) assumes a global
//! clock shared by all clients and the database. Its practical method (§4.2)
//! approximates this with client-side timing. Because this reproduction runs
//! every component in a single process, one monotonic clock *is* a global
//! clock, which makes our measured freshness strictly closer to the
//! theoretical definition than the paper's own setup.

use std::sync::OnceLock;
use std::time::Instant;

/// A point in time, in nanoseconds since the clock epoch.
pub type Nanos = u64;

/// Monotonic nanosecond clock anchored at first use.
///
/// All commit times and query start times in the harness are read from the
/// same [`BenchClock::global`] instance, so freshness scores are exact
/// differences on one time base.
#[derive(Debug)]
pub struct BenchClock {
    epoch: Instant,
}

impl BenchClock {
    /// Creates a clock anchored at "now". Mostly useful for tests; the
    /// harness uses [`BenchClock::global`].
    pub fn new() -> Self {
        BenchClock { epoch: Instant::now() }
    }

    /// The process-wide shared clock.
    pub fn global() -> &'static BenchClock {
        static GLOBAL: OnceLock<BenchClock> = OnceLock::new();
        GLOBAL.get_or_init(BenchClock::new)
    }

    /// Nanoseconds elapsed since this clock's epoch.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.epoch.elapsed().as_nanos() as Nanos
    }
}

impl Default for BenchClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Converts a nanosecond duration to fractional seconds.
#[inline]
pub fn nanos_to_secs(n: Nanos) -> f64 {
    n as f64 / 1e9
}

/// Converts fractional seconds to nanoseconds, saturating at zero.
#[inline]
pub fn secs_to_nanos(s: f64) -> Nanos {
    if s <= 0.0 {
        0
    } else {
        (s * 1e9) as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = BenchClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn global_clock_is_shared() {
        let a = BenchClock::global().now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = BenchClock::global().now();
        assert!(b > a);
        assert!(b - a >= 1_000_000, "at least 1ms should have elapsed");
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(secs_to_nanos(1.5), 1_500_000_000);
        assert_eq!(secs_to_nanos(-3.0), 0);
        let s = nanos_to_secs(2_000_000_000);
        assert!((s - 2.0).abs() < 1e-12);
    }
}
