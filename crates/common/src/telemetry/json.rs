//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The workspace is offline (no serde); the run artifact only needs
//! objects, arrays, strings, and numbers. Integers are kept as `i64`
//! (all our counters fit) so `u64` metric values round-trip exactly;
//! floats use Rust's shortest-roundtrip formatting.

/// A parsed or to-be-written JSON value. Object keys keep insertion
/// order for stable output.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Wraps a `u64`, preserving integer precision where possible.
    pub fn from_u64(v: u64) -> Json {
        if v <= i64::MAX as u64 {
            Json::Int(v as i64)
        } else {
            Json::Num(v as f64)
        }
    }

    pub fn from_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented serialization (for human-inspected artifacts).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` is shortest-roundtrip; force a decimal point so
                    // floats stay floats across a round trip.
                    let s = n.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our
                            // ASCII metric names; map them to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_values() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Int(42)),
            ("b".into(), Json::Num(1.5)),
            ("c".into(), Json::Str("hi \"there\"\n".into())),
            ("d".into(), Json::Arr(vec![Json::Null, Json::Bool(true), Json::Int(-3)])),
            ("e".into(), Json::Obj(vec![])),
        ]);
        for text in [v.dump(), v.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn floats_stay_floats() {
        let v = Json::Num(2.0);
        let text = v.dump();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_shortest_roundtrip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 12345.6789, f64::MAX, 5e-324] {
            let text = Json::Num(x).dump();
            match Json::parse(&text).unwrap() {
                Json::Num(y) => assert_eq!(x, y, "{text}"),
                other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn large_u64_counters_roundtrip() {
        let v = Json::from_u64(u64::MAX / 3);
        let back = Json::parse(&v.dump()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX / 3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{}extra").is_err());
    }
}
