//! Stable identifiers for the HATtrick schema (Figure 4 of the paper).
//!
//! Tables and columns are addressed by dense integer ids so that the hot
//! transaction and scan paths never do string lookups. The column-offset
//! constants in the per-table modules define the physical row layout used by
//! every storage backend in the workspace.

/// Zero-based column offset within a table's row layout.
pub type ColId = usize;

/// The seven relations of the HATtrick schema.
///
/// `Freshness` models the family of single-row `FRESHNESS_j` tables from
/// §4.2 of the paper: engines store one row per transactional client, and
/// because every row store in this workspace versions and locks at row
/// granularity, per-client rows are exactly as contention-free as the
/// paper's per-client tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum TableId {
    Lineorder = 0,
    Customer = 1,
    Supplier = 2,
    Part = 3,
    Date = 4,
    History = 5,
    Freshness = 6,
}

impl TableId {
    /// All tables, in id order.
    pub const ALL: [TableId; 7] = [
        TableId::Lineorder,
        TableId::Customer,
        TableId::Supplier,
        TableId::Part,
        TableId::Date,
        TableId::History,
        TableId::Freshness,
    ];

    /// Number of tables in the schema.
    pub const COUNT: usize = 7;

    /// Dense index usable for per-table arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Lower-case relation name, matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            TableId::Lineorder => "lineorder",
            TableId::Customer => "customer",
            TableId::Supplier => "supplier",
            TableId::Part => "part",
            TableId::Date => "date",
            TableId::History => "history",
            TableId::Freshness => "freshness",
        }
    }

    /// Whether the transactional workload mutates this table.
    pub const fn is_mutable(self) -> bool {
        matches!(
            self,
            TableId::Lineorder
                | TableId::Customer
                | TableId::Supplier
                | TableId::History
                | TableId::Freshness
        )
    }
}

/// `LINEORDER` column offsets (SSB fact table).
pub mod lineorder {
    use super::ColId;
    pub const ORDERKEY: ColId = 0;
    pub const LINENUMBER: ColId = 1;
    pub const CUSTKEY: ColId = 2;
    pub const PARTKEY: ColId = 3;
    pub const SUPPKEY: ColId = 4;
    pub const ORDERDATE: ColId = 5;
    pub const ORDPRIORITY: ColId = 6;
    pub const SHIPPRIORITY: ColId = 7;
    pub const QUANTITY: ColId = 8;
    pub const EXTENDEDPRICE: ColId = 9;
    pub const ORDTOTALPRICE: ColId = 10;
    pub const DISCOUNT: ColId = 11;
    pub const REVENUE: ColId = 12;
    pub const SUPPLYCOST: ColId = 13;
    pub const TAX: ColId = 14;
    pub const COMMITDATE: ColId = 15;
    pub const SHIPMODE: ColId = 16;
    pub const WIDTH: usize = 17;
}

/// `CUSTOMER` column offsets (extended with `PAYMENTCNT`).
pub mod customer {
    use super::ColId;
    pub const CUSTKEY: ColId = 0;
    pub const NAME: ColId = 1;
    pub const ADDRESS: ColId = 2;
    pub const CITY: ColId = 3;
    pub const NATION: ColId = 4;
    pub const REGION: ColId = 5;
    pub const PHONE: ColId = 6;
    pub const MKTSEGMENT: ColId = 7;
    pub const PAYMENTCNT: ColId = 8;
    pub const WIDTH: usize = 9;
}

/// `SUPPLIER` column offsets (extended with `YTD`).
pub mod supplier {
    use super::ColId;
    pub const SUPPKEY: ColId = 0;
    pub const NAME: ColId = 1;
    pub const ADDRESS: ColId = 2;
    pub const CITY: ColId = 3;
    pub const NATION: ColId = 4;
    pub const REGION: ColId = 5;
    pub const PHONE: ColId = 6;
    pub const YTD: ColId = 7;
    pub const WIDTH: usize = 8;
}

/// `PART` column offsets (extended with `PRICE`).
pub mod part {
    use super::ColId;
    pub const PARTKEY: ColId = 0;
    pub const NAME: ColId = 1;
    pub const MFGR: ColId = 2;
    pub const CATEGORY: ColId = 3;
    pub const BRAND1: ColId = 4;
    pub const COLOR: ColId = 5;
    pub const TYPE: ColId = 6;
    pub const SIZE: ColId = 7;
    pub const CONTAINER: ColId = 8;
    pub const PRICE: ColId = 9;
    pub const WIDTH: usize = 10;
}

/// `DATE` column offsets (full SSB date dimension).
pub mod date {
    use super::ColId;
    pub const DATEKEY: ColId = 0;
    pub const DATE: ColId = 1;
    pub const DAYOFWEEK: ColId = 2;
    pub const MONTH: ColId = 3;
    pub const YEAR: ColId = 4;
    pub const YEARMONTHNUM: ColId = 5;
    pub const YEARMONTH: ColId = 6;
    pub const DAYNUMINWEEK: ColId = 7;
    pub const DAYNUMINMONTH: ColId = 8;
    pub const DAYNUMINYEAR: ColId = 9;
    pub const MONTHNUMINYEAR: ColId = 10;
    pub const WEEKNUMINYEAR: ColId = 11;
    pub const SELLINGSEASON: ColId = 12;
    pub const LASTDAYINMONTHFL: ColId = 13;
    pub const HOLIDAYFL: ColId = 14;
    pub const WEEKDAYFL: ColId = 15;
    pub const WIDTH: usize = 16;
}

/// `HISTORY` column offsets (new in HATtrick).
pub mod history {
    use super::ColId;
    pub const ORDERKEY: ColId = 0;
    pub const CUSTKEY: ColId = 1;
    pub const AMOUNT: ColId = 2;
    pub const WIDTH: usize = 3;
}

/// `FRESHNESS_j` column offsets (new in HATtrick, one row per T-client).
pub mod freshness {
    use super::ColId;
    pub const CLIENT: ColId = 0;
    pub const TXNNUM: ColId = 1;
    pub const WIDTH: usize = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_indices_are_dense() {
        for (i, t) in TableId::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
        assert_eq!(TableId::ALL.len(), TableId::COUNT);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = TableId::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TableId::COUNT);
    }

    #[test]
    fn mutability_matches_paper() {
        // §5.1: after initial population CUSTOMER/SUPPLIER/PART/DATE sizes
        // are unaffected by the T workload (but customer/supplier rows are
        // updated in place by Payment).
        assert!(TableId::Lineorder.is_mutable());
        assert!(TableId::History.is_mutable());
        assert!(TableId::Freshness.is_mutable());
        assert!(!TableId::Part.is_mutable());
        assert!(!TableId::Date.is_mutable());
    }

    #[test]
    fn widths_cover_last_column() {
        assert_eq!(lineorder::SHIPMODE + 1, lineorder::WIDTH);
        assert_eq!(customer::PAYMENTCNT + 1, customer::WIDTH);
        assert_eq!(supplier::YTD + 1, supplier::WIDTH);
        assert_eq!(part::PRICE + 1, part::WIDTH);
        assert_eq!(date::WEEKDAYFL + 1, date::WIDTH);
        assert_eq!(history::AMOUNT + 1, history::WIDTH);
        assert_eq!(freshness::TXNNUM + 1, freshness::WIDTH);
    }
}
