//! Fixed-point money arithmetic.
//!
//! The HATtrick schema adds decimal attributes (`S_YTD`, `H_AMOUNT`,
//! `P_PRICE`) and SSB carries decimal prices and costs. Floating point is
//! unsuitable for balance bookkeeping (the Payment transaction accumulates
//! `S_YTD` across millions of commits), so amounts are stored as integer
//! hundredths ("cents") in an `i64`, giving an exact range of ±92 quadrillion
//! cents — far beyond any benchmark run.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An exact monetary amount stored as integer cents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Money(i64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// Constructs from a raw cent count.
    #[inline]
    pub const fn from_cents(cents: i64) -> Self {
        Money(cents)
    }

    /// Constructs from whole dollars.
    #[inline]
    pub const fn from_dollars(dollars: i64) -> Self {
        Money(dollars * 100)
    }

    /// Raw cent count.
    #[inline]
    pub const fn cents(self) -> i64 {
        self.0
    }

    /// Approximate floating-point dollar value (for reporting only).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / 100.0
    }

    /// Multiplies by a percentage expressed in whole points (e.g. `7` for
    /// 7%), truncating toward zero. Used for SSB discount/tax arithmetic.
    #[inline]
    pub fn pct(self, points: i64) -> Money {
        Money(self.0 * points / 100)
    }
}

impl Add for Money {
    type Output = Money;
    #[inline]
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    #[inline]
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    #[inline]
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    #[inline]
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    #[inline]
    fn mul(self, rhs: i64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Neg for Money {
    type Output = Money;
    #[inline]
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        Money(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}{}.{:02}", abs / 100, abs % 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        assert_eq!(Money::from_dollars(12).cents(), 1200);
        assert_eq!(Money::from_cents(5).cents(), 5);
        assert_eq!(Money::ZERO, Money::default());
    }

    #[test]
    fn arithmetic() {
        let a = Money::from_cents(250);
        let b = Money::from_cents(125);
        assert_eq!((a + b).cents(), 375);
        assert_eq!((a - b).cents(), 125);
        assert_eq!((a * 3).cents(), 750);
        assert_eq!((-a).cents(), -250);
        let mut c = a;
        c += b;
        c -= Money::from_cents(25);
        assert_eq!(c.cents(), 350);
    }

    #[test]
    fn percentage_truncates() {
        // 7% of $1.00 = 7 cents exactly.
        assert_eq!(Money::from_dollars(1).pct(7).cents(), 7);
        // 3% of 50 cents = 1.5 cents, truncated to 1.
        assert_eq!(Money::from_cents(50).pct(3).cents(), 1);
    }

    #[test]
    fn sum_iterator() {
        let total: Money = (1..=4).map(Money::from_cents).sum();
        assert_eq!(total.cents(), 10);
    }

    #[test]
    fn display_formats_cents() {
        assert_eq!(Money::from_cents(1234).to_string(), "12.34");
        assert_eq!(Money::from_cents(-5).to_string(), "-0.05");
        assert_eq!(Money::ZERO.to_string(), "0.00");
    }
}
