//! The unified telemetry layer: typed metric instruments, a registry,
//! diffable/mergeable snapshots, and a dependency-free JSON codec.
//!
//! Every engine counter, span timing, and latency distribution in the
//! workspace flows through these types instead of ad-hoc `AtomicU64`
//! fields and raw `Vec<u64>` sample logs:
//!
//! * [`Counter`] — monotonically increasing `u64` (commits, fsyncs).
//! * [`Gauge`] — last-writer-wins level (replication backlog, delta rows).
//! * [`Histogram`] — lock-free log-linear histogram for latencies and
//!   batch sizes. Recording touches only atomics; snapshots are
//!   *mergeable* (exact: bucket counts add) so repeated benchmark runs
//!   average correctly (§6.1's "average of three executions").
//! * [`MetricsRegistry`] — names instruments and snapshots them all at
//!   once into a [`MetricsSnapshot`], which is diffable (measurement
//!   windows), mergeable (repeated runs), and serializable (the
//!   machine-readable run artifact).
//!
//! Hot-path discipline: `record`/`add`/`set` never lock or allocate; the
//! registry's mutex is taken only at registration and snapshot time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod json;

use json::Json;

/// Canonical metric names, shared by producers (engines, harness) and
/// consumers (reports, artifacts) so a metric is added in exactly one
/// place and flows everywhere by name.
pub mod names {
    pub const TXN_COMMITS: &str = "txn.commits";
    pub const TXN_ABORTS: &str = "txn.aborts";
    pub const TXN_REPL_TIMEOUTS: &str = "txn.replication_timeouts";
    /// Commits whose write set spanned more than one commit shard (each
    /// pays the cross-shard 2PC round). Zero on a shard-local workload.
    pub const TXN_XSHARD_COMMITS: &str = "txn.xshard_commits";
    pub const QUERIES: &str = "query.executed";
    pub const MORSELS_SCANNED: &str = "scan.morsels_scanned";
    pub const MORSELS_PRUNED: &str = "scan.morsels_pruned";
    /// Scan batches pulled by the vectorized probe path.
    pub const SCAN_BATCHES: &str = "scan.batches";
    /// Fact rows skipped unscanned because morsel zone maps cannot
    /// satisfy the query's zone checks.
    pub const SCAN_ROWS_PRUNED: &str = "scan.rows_pruned_zonemap";
    /// Fact rows removed by the vectorized filter kernels.
    pub const SCAN_ROWS_FILTERED: &str = "scan.rows_filtered_vectorized";
    /// Compressed bytes resident in columnar segments (gauge).
    pub const COLSTORE_BYTES_ENCODED: &str = "colstore.bytes_encoded";
    /// Bytes those segments would occupy fully decoded (gauge); the
    /// encoded/decoded ratio is the compression ratio.
    pub const COLSTORE_BYTES_DECODED: &str = "colstore.bytes_decoded_equiv";
    pub const PROBE_NANOS: &str = "probe.nanos";
    pub const PROBE_WORKERS_MAX: &str = "probe.workers_max";
    pub const AGG_SATURATIONS: &str = "agg.saturations";
    /// End-to-end commit call duration (install + durability wait), ns.
    pub const SPAN_COMMIT: &str = "span.commit";
    /// Snapshot/view acquisition before a query (read-index waits,
    /// delta merges, snapshot loads), ns.
    pub const SPAN_SNAPSHOT: &str = "span.snapshot_acquire";
    /// Dimension hash-build phase of a query, ns.
    pub const SPAN_QUERY_BUILD: &str = "span.query_build";
    /// Fact probe phase of a query, ns.
    pub const SPAN_QUERY_PROBE: &str = "span.query_probe";
    pub const WAL_FSYNCS: &str = "wal.fsyncs";
    /// Commits acknowledged per durability flush (group-commit batch).
    pub const WAL_GROUP_COMMIT_BATCH: &str = "wal.group_commit_batch";
    pub const WAL_RECOVERY_REPLAYED: &str = "wal.recovery_replayed";
    pub const WAL_TORN_TAILS: &str = "wal.torn_tail_truncations";
    /// Commits shed with a retryable `Degraded` error (storage fault or
    /// group-commit backlog at its bound) instead of being queued.
    pub const WAL_SHED_COMMITS: &str = "wal.shed_commits";
    /// Background scrub passes (checksum re-verification of sealed
    /// segments plus a device probe while degraded).
    pub const WAL_SCRUB_PASSES: &str = "wal.scrub_passes";
    /// Active segments quarantined after a failed write/fsync (sealed at
    /// their durable prefix, replaced by a fresh segment on re-admission).
    pub const WAL_QUARANTINED: &str = "wal.quarantined_segments";
    /// Engine health gauge: 0 healthy, 1 degraded, 2 recovering.
    pub const HEALTH_STATE: &str = "health.state";
    /// Scrub ticks spent outside `Healthy` (degraded-time proxy).
    pub const HEALTH_DEGRADED_TICKS: &str = "health.degraded_ticks";
    /// Faults injected by a seeded `DiskFaultPlan` (chaos runs only).
    pub const DISK_FAULTS: &str = "disk.faults_injected";
    /// Admission-control counters, per request class. `offered` counts
    /// every request that reached the gate; `admitted` those allowed
    /// through; `shed` those rejected with a retryable `Overloaded`
    /// because the gate's queue sojourn exceeded the deadline budget or
    /// the bounded queue overflowed (traffic cause); `shed_breaker`
    /// those rejected because the overload circuit breaker was open —
    /// storage health off `Healthy` tightens admission instead of
    /// queueing doomed work (disk cause, distinct from
    /// `wal.shed_commits` which sheds *inside* the commit path).
    pub const ADMIT_TXN_OFFERED: &str = "admission.txn.offered";
    pub const ADMIT_TXN_ADMITTED: &str = "admission.txn.admitted";
    pub const ADMIT_TXN_SHED: &str = "admission.txn.shed";
    pub const ADMIT_TXN_SHED_BREAKER: &str = "admission.txn.shed_breaker";
    pub const ADMIT_QUERY_OFFERED: &str = "admission.query.offered";
    pub const ADMIT_QUERY_ADMITTED: &str = "admission.query.admitted";
    pub const ADMIT_QUERY_SHED: &str = "admission.query.shed";
    pub const ADMIT_QUERY_SHED_BREAKER: &str = "admission.query.shed_breaker";
    /// Nanoseconds each admitted request waited at the gate before
    /// entering the engine (per class).
    pub const ADMIT_TXN_QUEUE_WAIT: &str = "admission.txn.queue_wait";
    pub const ADMIT_QUERY_QUEUE_WAIT: &str = "admission.query.queue_wait";
    /// Open-loop driver accounting. `offered` is what the arrival
    /// schedule generated (the independent variable); `completed` is
    /// what finished successfully; `goodput` the subset that finished
    /// within its deadline. Sheds are split by where/why the request
    /// died: at the harness's bounded arrival queue, at the engine's
    /// admission gate (`Overloaded`), or by storage degradation
    /// (`Degraded`).
    pub const OPENLOOP_OFFERED: &str = "openloop.offered";
    pub const OPENLOOP_STARTED: &str = "openloop.started";
    pub const OPENLOOP_COMPLETED: &str = "openloop.completed";
    pub const OPENLOOP_GOODPUT: &str = "openloop.goodput";
    pub const OPENLOOP_DEADLINE_MISSED: &str = "openloop.deadline_missed";
    pub const OPENLOOP_SHED_QUEUE: &str = "openloop.shed_queue";
    /// Requests shed at dequeue because their queue sojourn had already
    /// exceeded the deadline budget (CoDel-style: never spend service
    /// time on work whose client has given up).
    pub const OPENLOOP_SHED_STALE: &str = "openloop.shed_stale";
    pub const OPENLOOP_SHED_ENGINE: &str = "openloop.shed_engine";
    pub const OPENLOOP_SHED_DEGRADED: &str = "openloop.shed_degraded";
    /// Retries attempted vs denied by the client-side retry budget
    /// (denied retries become `gave_up`, preventing retry storms).
    pub const OPENLOOP_RETRIES: &str = "openloop.retries";
    pub const OPENLOOP_RETRY_DENIED: &str = "openloop.retry_denied";
    pub const OPENLOOP_GAVE_UP: &str = "openloop.gave_up";
    /// Enqueue-to-completion nanoseconds for every finished request
    /// (the p50/p99/p999 sojourn signal of the overload report).
    pub const OPENLOOP_SOJOURN: &str = "openloop.sojourn";
    /// Elastic scheduler accounting: controller steps taken, split
    /// *changes* among them, analytical queries completed by the elastic
    /// A-side driver, and the final `(t, a)` core split as gauges. All
    /// zero in static runs, which is what elides the report line.
    pub const SCHED_DECISIONS: &str = "sched.decisions";
    pub const SCHED_REASSIGNMENTS: &str = "sched.reassignments";
    pub const SCHED_A_QUERIES: &str = "sched.a_queries";
    pub const SCHED_T_CORES: &str = "sched.t_cores";
    pub const SCHED_A_CORES: &str = "sched.a_cores";
    pub const REPL_BACKLOG: &str = "repl.backlog";
    pub const DELTA_ROWS: &str = "delta.rows";
    /// Background MVCC vacuum passes completed.
    pub const VACUUM_PASSES: &str = "vacuum.passes";
    /// Row versions reclaimed by vacuum (all passes, all tables).
    pub const VACUUM_VERSIONS_PRUNED: &str = "vacuum.versions_pruned";
    /// Dead secondary-index entries reclaimed by the vacuum sweep
    /// (lineorder composite indexes; entries whose rid has no live slot).
    pub const VACUUM_INDEX_SWEPT: &str = "vacuum.index_entries_swept";
    /// Live MVCC versions across every chain in the row store (gauge;
    /// the long-run memory-plateau signal).
    pub const LIVE_VERSIONS: &str = "vacuum.live_versions";
    /// Pre-prune chain length of each slot a vacuum pass visited.
    pub const VACUUM_CHAIN_LENGTH: &str = "vacuum.chain_length";
    pub const HARNESS_COMMITTED: &str = "harness.committed";
    pub const HARNESS_QUERIES: &str = "harness.queries";
    pub const HARNESS_ABORTS: &str = "harness.aborts";
    pub const HARNESS_RETRIES: &str = "harness.retries";
    pub const HARNESS_TIMEOUTS: &str = "harness.timeouts";
    pub const HARNESS_GAVE_UP: &str = "harness.gave_up";
    pub const HARNESS_QUERY_RETRIES: &str = "harness.query_retries";
    pub const HARNESS_BACKLOG_HWM: &str = "harness.backlog_hwm";
    /// Per-label latency histograms are nested under these prefixes.
    pub const LATENCY_TXN_PREFIX: &str = "latency.txn.";
    pub const LATENCY_QUERY_PREFIX: &str = "latency.query.";
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins level (may go up or down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is higher (high-water marks).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log-linear bucket layout: values below 32 get exact unit buckets;
/// above, each power-of-two octave is split into 16 linear sub-buckets,
/// so the relative bucket width is at most 1/16 (6.25%) everywhere.
const SUBBUCKETS: usize = 16;
/// Total buckets covering the whole `u64` range.
pub const HIST_BUCKETS: usize = 16 * 61;

/// Index of the bucket containing `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 2 * SUBBUCKETS as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize; // e >= 5
        let sub = ((v >> (e - 4)) & 0xF) as usize;
        SUBBUCKETS * (e - 3) + sub
    }
}

/// Smallest value that lands in bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i < 2 * SUBBUCKETS {
        i as u64
    } else {
        let e = i / SUBBUCKETS + 3;
        let sub = (i % SUBBUCKETS) as u64;
        (SUBBUCKETS as u64 + sub) << (e - 4)
    }
}

/// Largest value that lands in bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

/// A lock-free log-linear histogram. `record` is atomics-only; the full
/// bucket array (~8 KiB) is allocated once at registration.
pub struct Histogram {
    buckets: Box<[AtomicU64; HIST_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the boxed array from a vec.
        let v: Vec<AtomicU64> = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; HIST_BUCKETS]> =
            v.into_boxed_slice().try_into().expect("sized");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_nanos(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy (concurrent recorders may
    /// land between bucket and count reads; totals stay monotone).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An immutable histogram state: sparse `(bucket, count)` pairs plus
/// exact `count`/`sum`/`min`/`max`. Merging adds bucket counts (exact and
/// order-independent); diffing subtracts them (windowed views).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Sparse, sorted by bucket index; zero-count buckets omitted.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Builds a snapshot from raw values (tests, adapters).
    pub fn from_values(values: &[u64]) -> Self {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the q-th observation, clamped to the exact observed
    /// maximum — so the error is at most one bucket width (≤ 6.25%
    /// relative).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bucket_upper(i as usize).min(self.max);
            }
        }
        self.max
    }

    /// Adds another snapshot's observations (exact; associative and
    /// commutative, so repeated-run merges are order-independent).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        if self.count == 0 {
            return other.clone();
        }
        if other.count == 0 {
            return self.clone();
        }
        let mut buckets = self.buckets.clone();
        for &(i, n) in &other.buckets {
            match buckets.binary_search_by_key(&i, |&(b, _)| b) {
                Ok(pos) => buckets[pos].1 += n,
                Err(pos) => buckets.insert(pos, (i, n)),
            }
        }
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// Observations recorded since `earlier` (bucket-wise subtraction).
    /// `min`/`max` cannot be un-merged, so the window inherits the
    /// cumulative extremes — an over-approximation, never an invention.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        for &(i, n) in &self.buckets {
            let before = earlier
                .buckets
                .binary_search_by_key(&i, |&(b, _)| b)
                .map(|pos| earlier.buckets[pos].1)
                .unwrap_or(0);
            let d = n.saturating_sub(before);
            if d > 0 {
                buckets.push((i, d));
            }
        }
        let count = self.count.saturating_sub(earlier.count);
        if count == 0 && buckets.is_empty() {
            return HistogramSnapshot::default();
        }
        HistogramSnapshot {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from_u64(self.count)),
            ("sum".into(), Json::from_u64(self.sum)),
            ("min".into(), Json::from_u64(self.min)),
            ("max".into(), Json::from_u64(self.max)),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, n)| {
                            Json::Arr(vec![Json::from_u64(i as u64), Json::from_u64(n)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let buckets = j
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram: missing buckets")?
            .iter()
            .map(|pair| {
                let p = pair.as_arr().filter(|p| p.len() == 2).ok_or("bad bucket pair")?;
                Ok((
                    p[0].as_u64().ok_or("bad bucket index")? as u32,
                    p[1].as_u64().ok_or("bad bucket count")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let field = |name: &str| {
            j.get(name).and_then(Json::as_u64).ok_or_else(|| format!("histogram: missing {name}"))
        };
        Ok(HistogramSnapshot {
            count: field("count")?,
            sum: field("sum")?,
            min: field("min")?,
            max: field("max")?,
            buckets,
        })
    }
}

/// Times a named span; finish into any [`Histogram`]. Cost: two
/// `Instant::now` calls and one histogram record.
#[derive(Debug)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    #[inline]
    pub fn start() -> Self {
        SpanTimer { start: Instant::now() }
    }

    /// Elapsed nanoseconds so far.
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Records the elapsed time into `hist`.
    #[inline]
    pub fn finish(self, hist: &Histogram) {
        hist.record(self.elapsed_nanos());
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Names instruments and snapshots them all at once. Registration and
/// snapshotting take a mutex; the returned `Arc` handles are what hot
/// paths touch, lock-free.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Vec<(String, Instrument)>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.lock().map(|v| v.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry").field("instruments", &n).finish()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        for (n, i) in inner.iter() {
            if n == name {
                if let Instrument::Counter(c) = i {
                    return Arc::clone(c);
                }
                panic!("metric {name} re-registered with a different type");
            }
        }
        let c = Arc::new(Counter::new());
        inner.push((name.to_string(), Instrument::Counter(Arc::clone(&c))));
        c
    }

    /// Registers (or retrieves) a gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        for (n, i) in inner.iter() {
            if n == name {
                if let Instrument::Gauge(g) = i {
                    return Arc::clone(g);
                }
                panic!("metric {name} re-registered with a different type");
            }
        }
        let g = Arc::new(Gauge::new());
        inner.push((name.to_string(), Instrument::Gauge(Arc::clone(&g))));
        g
    }

    /// Registers (or retrieves) a histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        for (n, i) in inner.iter() {
            if n == name {
                if let Instrument::Histogram(h) = i {
                    return Arc::clone(h);
                }
                panic!("metric {name} re-registered with a different type");
            }
        }
        let h = Arc::new(Histogram::new());
        inner.push((name.to_string(), Instrument::Histogram(Arc::clone(&h))));
        h
    }

    /// Reads every instrument into one snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, instrument) in inner.iter() {
            match instrument {
                Instrument::Counter(c) => snap.set_counter(name, c.get()),
                Instrument::Gauge(g) => snap.set_gauge(name, g.get()),
                Instrument::Histogram(h) => snap.set_histogram(name, h.snapshot()),
            }
        }
        snap
    }
}

/// A point-in-time reading of a set of named metrics. Diffable (window
/// between two snapshots), mergeable (repeated runs), serializable (the
/// run artifact). Entries are kept sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

fn sorted_set<T>(entries: &mut Vec<(String, T)>, name: &str, value: T) {
    match entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
        Ok(pos) => entries[pos].1 = value,
        Err(pos) => entries.insert(pos, (name.to_string(), value)),
    }
}

fn sorted_get<'a, T>(entries: &'a [(String, T)], name: &str) -> Option<&'a T> {
    entries
        .binary_search_by(|(n, _)| n.as_str().cmp(name))
        .ok()
        .map(|pos| &entries[pos].1)
}

impl MetricsSnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter value, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        sorted_get(&self.counters, name).copied().unwrap_or(0)
    }

    /// Gauge value, zero when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        sorted_get(&self.gauges, name).copied().unwrap_or(0)
    }

    /// Histogram state, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        sorted_get(&self.histograms, name)
    }

    pub fn set_counter(&mut self, name: &str, v: u64) {
        sorted_set(&mut self.counters, name, v);
    }

    pub fn set_gauge(&mut self, name: &str, v: u64) {
        sorted_set(&mut self.gauges, name, v);
    }

    pub fn set_histogram(&mut self, name: &str, h: HistogramSnapshot) {
        sorted_set(&mut self.histograms, name, h);
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> &[(String, u64)] {
        &self.gauges
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> &[(String, HistogramSnapshot)] {
        &self.histograms
    }

    /// Histograms whose name starts with `prefix`, as `(suffix, hist)`.
    pub fn histograms_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a HistogramSnapshot)> + 'a {
        self.histograms
            .iter()
            .filter_map(move |(n, h)| n.strip_prefix(prefix).map(|s| (s, h)))
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms subtract (saturating, so concurrent-sampling skew never
    /// goes negative); gauges keep their later value.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let d = match earlier.histogram(n) {
                    Some(e) => h.diff(e),
                    None => h.clone(),
                };
                (n.clone(), d)
            })
            .collect();
        MetricsSnapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Combines two windows: counters and histograms add, gauges take the
    /// maximum. Associative and commutative.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (n, v) in &other.counters {
            let cur = out.counter(n);
            out.set_counter(n, cur + v);
        }
        for (n, v) in &other.gauges {
            let cur = sorted_get(&out.gauges, n).copied();
            out.set_gauge(n, cur.map_or(*v, |c| c.max(*v)));
        }
        for (n, h) in &other.histograms {
            let merged = match out.histogram(n) {
                Some(mine) => mine.merge(h),
                None => h.clone(),
            };
            out.set_histogram(n, merged);
        }
        out
    }

    pub fn to_json(&self) -> Json {
        let obj = |entries: &[(String, u64)]| {
            Json::Obj(
                entries.iter().map(|(n, v)| (n.clone(), Json::from_u64(*v))).collect(),
            )
        };
        Json::Obj(vec![
            ("counters".into(), obj(&self.counters)),
            ("gauges".into(), obj(&self.gauges)),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        let mut snap = MetricsSnapshot::default();
        let numbers = |j: &Json, key: &str| -> Result<Vec<(String, u64)>, String> {
            j.get(key)
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("snapshot: missing {key}"))?
                .iter()
                .map(|(n, v)| {
                    Ok((n.clone(), v.as_u64().ok_or_else(|| format!("bad value for {n}"))?))
                })
                .collect()
        };
        for (n, v) in numbers(j, "counters")? {
            snap.set_counter(&n, v);
        }
        for (n, v) in numbers(j, "gauges")? {
            snap.set_gauge(&n, v);
        }
        for (n, h) in j
            .get("histograms")
            .and_then(Json::as_obj)
            .ok_or("snapshot: missing histograms")?
        {
            snap.set_histogram(n, HistogramSnapshot::from_json(h)?);
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(9);
        g.set_max(3);
        assert_eq!(g.get(), 9);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn bucket_layout_is_continuous_and_monotone() {
        // Every value maps to exactly one bucket whose bounds contain it.
        for v in (0..4096u64).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v, "v={v} i={i}");
            assert!(v <= bucket_upper(i), "v={v} i={i}");
        }
        // Bucket bounds tile the u64 range without gaps.
        for i in 0..HIST_BUCKETS - 1 {
            assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1), "i={i}");
        }
        assert_eq!(bucket_upper(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let h = Histogram::new();
        for v in [1u64, 1, 1, 2, 3] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.quantile(0.5), 1);
        assert_eq!(s.quantile(1.0), 3);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert_eq!(s.mean(), 8.0 / 5.0);
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let h = Histogram::new();
        h.record(1000); // bucket upper bound is above 1000
        let s = h.snapshot();
        assert_eq!(s.quantile(0.99), 1000);
    }

    #[test]
    fn merge_and_diff_roundtrip() {
        let a = HistogramSnapshot::from_values(&[1, 5, 900, 70_000]);
        let b = HistogramSnapshot::from_values(&[2, 5, 1_000_000]);
        let m = a.merge(&b);
        assert_eq!(m.count, 7);
        assert_eq!(m.sum, a.sum + b.sum);
        let d = m.diff(&a);
        assert_eq!(d.count, b.count);
        assert_eq!(d.sum, b.sum);
        // Same buckets as b (extremes are cumulative by design).
        assert_eq!(d.buckets, b.buckets);
        // Empty diff collapses to the default.
        assert_eq!(m.diff(&m), HistogramSnapshot::default());
    }

    #[test]
    fn registry_snapshot_reads_everything() {
        let r = MetricsRegistry::new();
        let c = r.counter("x.count");
        let g = r.gauge("x.level");
        let h = r.histogram("x.lat");
        c.add(3);
        g.set(7);
        h.record(100);
        let s = r.snapshot();
        assert_eq!(s.counter("x.count"), 3);
        assert_eq!(s.gauge("x.level"), 7);
        assert_eq!(s.histogram("x.lat").unwrap().count, 1);
        assert_eq!(s.counter("missing"), 0);
        // Re-registration returns the same instrument.
        r.counter("x.count").inc();
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn snapshot_diff_and_merge() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("c", 10);
        a.set_gauge("g", 4);
        a.set_histogram("h", HistogramSnapshot::from_values(&[1, 2]));
        let mut b = MetricsSnapshot::new();
        b.set_counter("c", 15);
        b.set_gauge("g", 2);
        b.set_histogram("h", HistogramSnapshot::from_values(&[1, 2, 8]));
        let d = b.diff(&a);
        assert_eq!(d.counter("c"), 5);
        assert_eq!(d.gauge("g"), 2, "gauges keep the later value");
        assert_eq!(d.histogram("h").unwrap().count, 1);
        let m = a.merge(&b);
        assert_eq!(m.counter("c"), 25);
        assert_eq!(m.gauge("g"), 4, "gauges merge by max");
        assert_eq!(m.histogram("h").unwrap().count, 5);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let mut s = MetricsSnapshot::new();
        s.set_counter("txn.commits", 123);
        s.set_gauge("repl.backlog", 7);
        s.set_histogram("span.commit", HistogramSnapshot::from_values(&[5, 5, 90_000]));
        let text = s.to_json().dump();
        let back = MetricsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn span_timer_records() {
        let h = Histogram::new();
        let t = SpanTimer::start();
        std::thread::sleep(std::time::Duration::from_micros(50));
        t.finish(&h);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 50_000, "recorded {} ns", s.max);
    }
}
