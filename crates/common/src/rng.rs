//! Deterministic random-number helpers.
//!
//! Every random decision in the workspace (data generation, transaction
//! parameter selection, query-batch permutation) flows through a seeded
//! [`HatRng`], so a benchmark run is reproducible given its seed. Client
//! RNGs are derived from a base seed with SplitMix64 so that adding a client
//! never perturbs the streams of existing clients.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 step: turns a seed + stream index into an independent seed.
#[inline]
pub fn split_seed(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A fast, seedable RNG with the helpers the benchmark needs.
#[derive(Debug, Clone)]
pub struct HatRng {
    inner: SmallRng,
}

impl HatRng {
    /// Creates an RNG from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        HatRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derives an independent per-stream RNG (e.g. one per client).
    pub fn derive(base: u64, stream: u64) -> Self {
        Self::seeded(split_seed(base, stream))
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform usize in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// True with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Picks a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Selects an index according to integer weights (e.g. the 48/48/4
    /// transaction mix). Weights must not all be zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|w| *w as u64).sum();
        debug_assert!(total > 0);
        let mut x = self.range_u64(0, total - 1);
        for (i, w) in weights.iter().enumerate() {
            if x < *w as u64 {
                return i;
            }
            x -= *w as u64;
        }
        weights.len() - 1
    }

    /// A uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            v.swap(i, j);
        }
        v
    }

    /// Raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = HatRng::seeded(42);
        let mut b = HatRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_are_independent() {
        let mut a = HatRng::derive(42, 0);
        let mut b = HatRng::derive(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "derived streams should look unrelated");
    }

    #[test]
    fn range_bounds_inclusive() {
        let mut rng = HatRng::seeded(1);
        for _ in 0..1000 {
            let v = rng.range_u32(3, 5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(rng.range_u64(9, 9), 9);
    }

    #[test]
    fn weighted_respects_mix() {
        let mut rng = HatRng::seeded(7);
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.weighted(&[48, 48, 4])] += 1;
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(counts[0]) - 0.48).abs() < 0.01);
        assert!((f(counts[1]) - 0.48).abs() < 0.01);
        assert!((f(counts[2]) - 0.04).abs() < 0.005);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = HatRng::seeded(13);
        let p = rng.permutation(13);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn permutations_vary() {
        let mut rng = HatRng::seeded(13);
        let a = rng.permutation(13);
        let b = rng.permutation(13);
        assert_ne!(a, b, "astronomically unlikely to collide");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = HatRng::seeded(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }
}
