//! Calendar arithmetic for the SSB `DATE` dimension.
//!
//! SSB (and therefore HATtrick) fixes the date domain to the seven years
//! 1992-01-01 through 1998-12-31 — 2,556 days. New Order transactions keep
//! sampling order dates uniformly from this fixed range (§5.2.1), so the
//! dimension never grows. Dates are identified by a compact `yyyymmdd` key.

/// A date key in `yyyymmdd` form, e.g. `19940215`.
pub type DateKey = u32;

/// First day of the SSB calendar.
pub const FIRST_DATE: DateKey = 19920101;
/// Last day of the SSB calendar.
pub const LAST_DATE: DateKey = 19981231;
/// Number of days in the SSB calendar (7 years incl. leap days 1992/1996).
/// The original SSB dbgen reports 2556 due to an off-by-one; the true
/// 1992-01-01..1998-12-31 range is 2557 days.
pub const NUM_DATES: usize = 2557;
/// First year of the SSB calendar.
pub const FIRST_YEAR: u32 = 1992;
/// Last year of the SSB calendar.
pub const LAST_YEAR: u32 = 1998;

const MONTH_NAMES: [&str; 12] = [
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
];

const MONTH_ABBREV: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct",
    "Nov", "Dec",
];

const DAY_NAMES: [&str; 7] = [
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday",
    "Sunday",
];

/// Whether `year` is a Gregorian leap year.
#[inline]
pub fn is_leap_year(year: u32) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

/// Number of days in `month` (1-based) of `year`.
#[inline]
pub fn days_in_month(year: u32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// A fully decomposed calendar date within the SSB range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalendarDate {
    pub year: u32,
    /// 1-based month.
    pub month: u32,
    /// 1-based day of month.
    pub day: u32,
}

impl CalendarDate {
    /// Decomposes a `yyyymmdd` key.
    #[inline]
    pub fn from_key(key: DateKey) -> Self {
        CalendarDate { year: key / 10000, month: (key / 100) % 100, day: key % 100 }
    }

    /// Recomposes the `yyyymmdd` key.
    #[inline]
    pub fn key(&self) -> DateKey {
        self.year * 10000 + self.month * 100 + self.day
    }

    /// Days since 1992-01-01 (the SSB epoch), zero-based.
    pub fn ordinal(&self) -> u32 {
        let mut days = 0;
        for y in FIRST_YEAR..self.year {
            days += if is_leap_year(y) { 366 } else { 365 };
        }
        for m in 1..self.month {
            days += days_in_month(self.year, m);
        }
        days + self.day - 1
    }

    /// Day of week; 0 = Monday .. 6 = Sunday. 1992-01-01 was a Wednesday.
    #[inline]
    pub fn weekday(&self) -> u32 {
        (self.ordinal() + 2) % 7
    }

    /// English day-of-week name.
    pub fn day_name(&self) -> &'static str {
        DAY_NAMES[self.weekday() as usize]
    }

    /// English month name (`"January"` ...).
    pub fn month_name(&self) -> &'static str {
        MONTH_NAMES[(self.month - 1) as usize]
    }

    /// SSB `D_YEARMONTH` string such as `"Mar1992"`.
    pub fn yearmonth(&self) -> String {
        format!("{}{}", MONTH_ABBREV[(self.month - 1) as usize], self.year)
    }

    /// SSB `D_YEARMONTHNUM`, e.g. `199203`.
    #[inline]
    pub fn yearmonthnum(&self) -> u32 {
        self.year * 100 + self.month
    }

    /// 1-based day number within the year.
    pub fn day_num_in_year(&self) -> u32 {
        let mut d = self.day;
        for m in 1..self.month {
            d += days_in_month(self.year, m);
        }
        d
    }

    /// SSB `D_WEEKNUMINYEAR`: 1-based week number (weeks of 7 ordinal days).
    #[inline]
    pub fn week_num_in_year(&self) -> u32 {
        (self.day_num_in_year() - 1) / 7 + 1
    }

    /// SSB selling season, derived from month.
    pub fn selling_season(&self) -> &'static str {
        match self.month {
            12 | 1 => "Christmas",
            2..=4 => "Spring",
            5..=7 => "Summer",
            8..=10 => "Fall",
            _ => "Winter",
        }
    }

    /// Whether this is the last day of its month (SSB `D_LASTDAYINMONTHFL`).
    #[inline]
    pub fn is_last_day_in_month(&self) -> bool {
        self.day == days_in_month(self.year, self.month)
    }

    /// Crude SSB-style holiday flag: fixed-date holidays only.
    pub fn is_holiday(&self) -> bool {
        matches!(
            (self.month, self.day),
            (1, 1) | (7, 4) | (12, 25) | (12, 31) | (11, 28)
        )
    }

    /// Whether the date falls on Saturday or Sunday.
    #[inline]
    pub fn is_weekday(&self) -> bool {
        self.weekday() < 5
    }

    /// The next calendar day, staying within proper month/year boundaries.
    pub fn succ(&self) -> CalendarDate {
        let mut d = *self;
        if d.day < days_in_month(d.year, d.month) {
            d.day += 1;
        } else if d.month < 12 {
            d.month += 1;
            d.day = 1;
        } else {
            d.year += 1;
            d.month = 1;
            d.day = 1;
        }
        d
    }
}

/// Iterates every date key in the SSB calendar in ascending order.
pub fn all_date_keys() -> impl Iterator<Item = DateKey> {
    let mut current = Some(CalendarDate::from_key(FIRST_DATE));
    std::iter::from_fn(move || {
        let d = current?;
        current = if d.key() == LAST_DATE { None } else { Some(d.succ()) };
        Some(d.key())
    })
}

/// Adds `days` to a date key, clamping to the SSB range end.
pub fn add_days(key: DateKey, days: u32) -> DateKey {
    let mut d = CalendarDate::from_key(key);
    for _ in 0..days {
        if d.key() == LAST_DATE {
            break;
        }
        d = d.succ();
    }
    d.key()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_years() {
        assert!(is_leap_year(1992));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1993));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2000));
    }

    #[test]
    fn calendar_has_2557_days() {
        assert_eq!(all_date_keys().count(), NUM_DATES);
    }

    #[test]
    fn first_and_last_days() {
        let days: Vec<_> = all_date_keys().collect();
        assert_eq!(days[0], FIRST_DATE);
        assert_eq!(*days.last().unwrap(), LAST_DATE);
        // Strictly increasing keys.
        assert!(days.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn known_weekdays() {
        // 1992-01-01 was a Wednesday.
        assert_eq!(CalendarDate::from_key(19920101).day_name(), "Wednesday");
        // 1998-12-31 was a Thursday.
        assert_eq!(CalendarDate::from_key(19981231).day_name(), "Thursday");
        // 1994-07-04 was a Monday.
        assert_eq!(CalendarDate::from_key(19940704).day_name(), "Monday");
    }

    #[test]
    fn decompose_roundtrip() {
        for key in [19920101, 19940215, 19960229, 19981231] {
            assert_eq!(CalendarDate::from_key(key).key(), key);
        }
    }

    #[test]
    fn ordinals() {
        assert_eq!(CalendarDate::from_key(19920101).ordinal(), 0);
        assert_eq!(CalendarDate::from_key(19920201).ordinal(), 31);
        assert_eq!(
            CalendarDate::from_key(19981231).ordinal() as usize,
            NUM_DATES - 1
        );
    }

    #[test]
    fn derived_attributes() {
        let d = CalendarDate::from_key(19940315);
        assert_eq!(d.yearmonthnum(), 199403);
        assert_eq!(d.yearmonth(), "Mar1994");
        assert_eq!(d.month_name(), "March");
        assert_eq!(d.selling_season(), "Spring");
        assert_eq!(d.day_num_in_year(), 31 + 28 + 15);
        assert!(!d.is_last_day_in_month());
        assert!(CalendarDate::from_key(19960229).is_last_day_in_month());
        assert!(CalendarDate::from_key(19961225).is_holiday());
    }

    #[test]
    fn week_numbers_in_range() {
        for key in all_date_keys() {
            let w = CalendarDate::from_key(key).week_num_in_year();
            assert!((1..=53).contains(&w));
        }
    }

    #[test]
    fn add_days_clamps() {
        assert_eq!(add_days(19981230, 10), LAST_DATE);
        assert_eq!(add_days(19920101, 31), 19920201);
        assert_eq!(add_days(19920228, 1), 19920229, "1992 is a leap year");
    }
}
