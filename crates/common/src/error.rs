//! Common error type shared by every crate in the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, HatError>;

/// The error type for every fallible operation in the HATtrick stack.
///
/// Transaction aborts are modelled as errors so that the client driver can
/// distinguish a *retryable* outcome (write conflict, serialization failure)
/// from a genuine bug (schema violation, missing table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HatError {
    /// A write-write conflict was detected; the transaction must abort.
    /// Retryable.
    WriteConflict {
        /// Table on which the conflict occurred.
        table: &'static str,
    },
    /// Serializable validation failed (a read was invalidated by a
    /// concurrent committer). Retryable.
    SerializationFailure,
    /// The transaction was already committed or aborted.
    TxnClosed,
    /// A unique-key constraint would be violated by an insert.
    DuplicateKey { table: &'static str },
    /// A referenced row does not exist.
    NotFound { table: &'static str },
    /// A table or index referenced by name/id does not exist.
    UnknownTable(String),
    /// A column index was out of bounds or had an unexpected type.
    TypeMismatch { expected: &'static str, got: &'static str },
    /// The engine was asked to do something its configuration forbids
    /// (e.g. an index seek with `IndexProfile::None`).
    Unsupported(String),
    /// The replication link or a background worker shut down unexpectedly.
    EngineStopped,
    /// Invalid benchmark or engine configuration.
    InvalidConfig(String),
}

impl HatError {
    /// Whether the client driver should retry the enclosing transaction.
    ///
    /// The HATtrick harness counts only *successful* transactions towards
    /// throughput; conflicting transactions are retried with fresh inputs,
    /// matching how the paper's driver treats aborts.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            HatError::WriteConflict { .. } | HatError::SerializationFailure
        )
    }
}

impl fmt::Display for HatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HatError::WriteConflict { table } => {
                write!(f, "write-write conflict on table {table}")
            }
            HatError::SerializationFailure => {
                write!(f, "serializable validation failed")
            }
            HatError::TxnClosed => write!(f, "transaction already closed"),
            HatError::DuplicateKey { table } => {
                write!(f, "duplicate key in table {table}")
            }
            HatError::NotFound { table } => {
                write!(f, "row not found in table {table}")
            }
            HatError::UnknownTable(name) => write!(f, "unknown table {name}"),
            HatError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            HatError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            HatError::EngineStopped => write!(f, "engine stopped"),
            HatError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for HatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(HatError::WriteConflict { table: "customer" }.is_retryable());
        assert!(HatError::SerializationFailure.is_retryable());
        assert!(!HatError::TxnClosed.is_retryable());
        assert!(!HatError::DuplicateKey { table: "history" }.is_retryable());
        assert!(!HatError::EngineStopped.is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = HatError::WriteConflict { table: "supplier" };
        assert!(e.to_string().contains("supplier"));
        let e = HatError::UnknownTable("nope".into());
        assert!(e.to_string().contains("nope"));
    }
}
