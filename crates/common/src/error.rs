//! Common error type shared by every crate in the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, HatError>;

/// The error type for every fallible operation in the HATtrick stack.
///
/// Transaction aborts are modelled as errors so that the client driver can
/// distinguish a *retryable* outcome (write conflict, serialization failure)
/// from a genuine bug (schema violation, missing table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HatError {
    /// A write-write conflict was detected; the transaction must abort.
    /// Retryable.
    WriteConflict {
        /// Table on which the conflict occurred.
        table: &'static str,
    },
    /// Serializable validation failed (a read was invalidated by a
    /// concurrent committer). Retryable.
    SerializationFailure,
    /// The transaction was already committed or aborted.
    TxnClosed,
    /// A unique-key constraint would be violated by an insert.
    DuplicateKey { table: &'static str },
    /// A referenced row does not exist.
    NotFound { table: &'static str },
    /// A table or index referenced by name/id does not exist.
    UnknownTable(String),
    /// A column index was out of bounds or had an unexpected type.
    TypeMismatch { expected: &'static str, got: &'static str },
    /// The engine was asked to do something its configuration forbids
    /// (e.g. an index seek with `IndexProfile::None`).
    Unsupported(String),
    /// The replication link or a background worker shut down unexpectedly.
    EngineStopped,
    /// Invalid benchmark or engine configuration.
    InvalidConfig(String),
    /// A synchronous-replication wait (standby acknowledgement or remote
    /// apply) exceeded its configured bound *after* the transaction was
    /// installed on the primary. The transaction is durable locally but
    /// in doubt at the replica — clients must treat it as
    /// committed-in-doubt, not as a clean abort. Retryable in the sense
    /// that the *connection* recovers; the harness accounts it separately
    /// so the work is never double-applied.
    ReplicationTimeout,
    /// The replication/consensus service could not be reached *before*
    /// anything was installed (e.g. consensus rounds timed out under a
    /// link partition). The transaction aborted cleanly; safe to retry.
    ReplicaUnavailable,
    /// A WAL subscription asked for an LSN that the bounded retention
    /// ring has already evicted; the subscriber needs a full resync
    /// (basebackup) instead of log catch-up.
    WalTruncated { requested: u64, oldest: u64 },
    /// An on-disk WAL segment or checkpoint is structurally invalid
    /// (bad magic, impossible frame length, LSN discontinuity, torn
    /// record in a *sealed* segment). Recovery cannot proceed; operator
    /// intervention (restore from backup) is required. Not retryable.
    WalCorrupt { detail: String },
    /// A complete WAL record failed its CRC32 check — the bytes were
    /// fully written but silently corrupted (bit rot, torn sector).
    /// Distinguished from [`HatError::WalCorrupt`] so the harness can
    /// assert that injected bit-flips are detected as such. `lsn` is the
    /// expected sequence position of the bad record. Not retryable.
    ChecksumMismatch { lsn: u64 },
    /// The engine shed this commit *at admission* because its storage is
    /// degraded (a failed fsync/write quarantined the active WAL
    /// segment) or the group-commit backlog hit its bound. Nothing was
    /// installed: the transaction aborted cleanly and may be retried
    /// once the health state machine re-admits writes. Reads and
    /// analytics keep working throughout. Retryable. A failure *after*
    /// install is [`HatError::DurabilityInDoubt`], never this.
    Degraded,
    /// A storage fault voided the durability wait *after* the
    /// transaction installed: its WAL frame is re-queued to be rewritten
    /// onto a fresh segment, so the commit stays visible and becomes
    /// durable once the WAL re-admits itself (or is lost if the process
    /// dies first). Committed-in-doubt like
    /// [`HatError::ReplicationTimeout`]: the client's connection
    /// recovers, but the transaction must never be blindly re-executed —
    /// that would double-apply it.
    DurabilityInDoubt,
    /// The admission controller shed this request because the engine is
    /// over its offered-load capacity: the per-class queue's sojourn time
    /// exceeded the request's deadline budget (CoDel-style), the bounded
    /// queue overflowed, or the overload circuit breaker is open. Nothing
    /// was installed or executed — the request aborted cleanly and may be
    /// retried *if the client still has retry budget*; synchronized
    /// unbudgeted retries are exactly what turns a transient burst into a
    /// metastable overload. Distinct from [`HatError::Degraded`], which is
    /// a *storage-health* shed: the two are counted separately so an
    /// operator can tell "traffic too high" from "disk unhappy".
    /// Retryable.
    Overloaded {
        /// Request class that was shed (`"txn"` or `"query"`).
        class: &'static str,
    },
    /// A sealed WAL segment failed checksum verification during a scrub:
    /// the storage is not just transiently failing but has lost durable
    /// bytes. Commits stay shed until an operator restores the segment
    /// (`segment` is its first LSN); retrying cannot help. Not retryable.
    Quarantined { segment: u64 },
}

impl HatError {
    /// Whether the client driver should retry the enclosing transaction.
    ///
    /// The HATtrick harness counts only *successful* transactions towards
    /// throughput; conflicting transactions are retried with fresh inputs,
    /// matching how the paper's driver treats aborts.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            HatError::WriteConflict { .. }
                | HatError::SerializationFailure
                | HatError::ReplicationTimeout
                | HatError::ReplicaUnavailable
                | HatError::Degraded
                | HatError::DurabilityInDoubt
                | HatError::Overloaded { .. }
        )
    }

    /// Whether the transaction may have installed on the primary despite
    /// the error. Such outcomes must not be blindly re-executed: the
    /// writes are durable locally and a retry would double-apply them.
    pub fn is_commit_in_doubt(&self) -> bool {
        matches!(self, HatError::ReplicationTimeout | HatError::DurabilityInDoubt)
    }
}

impl fmt::Display for HatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HatError::WriteConflict { table } => {
                write!(f, "write-write conflict on table {table}")
            }
            HatError::SerializationFailure => {
                write!(f, "serializable validation failed")
            }
            HatError::TxnClosed => write!(f, "transaction already closed"),
            HatError::DuplicateKey { table } => {
                write!(f, "duplicate key in table {table}")
            }
            HatError::NotFound { table } => {
                write!(f, "row not found in table {table}")
            }
            HatError::UnknownTable(name) => write!(f, "unknown table {name}"),
            HatError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            HatError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            HatError::EngineStopped => write!(f, "engine stopped"),
            HatError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            HatError::ReplicationTimeout => {
                write!(f, "synchronous replication wait timed out (commit in doubt)")
            }
            HatError::ReplicaUnavailable => {
                write!(f, "replication/consensus service unavailable")
            }
            HatError::WalTruncated { requested, oldest } => {
                write!(
                    f,
                    "wal truncated: lsn {requested} requested but oldest retained is {oldest}"
                )
            }
            HatError::WalCorrupt { detail } => write!(f, "wal corrupt: {detail}"),
            HatError::ChecksumMismatch { lsn } => {
                write!(f, "wal record checksum mismatch at lsn {lsn}")
            }
            HatError::Degraded => {
                write!(f, "commit shed: engine degraded by a storage fault or full backlog")
            }
            HatError::DurabilityInDoubt => {
                write!(
                    f,
                    "durability wait voided by a storage fault after install (commit in doubt)"
                )
            }
            HatError::Overloaded { class } => {
                write!(
                    f,
                    "{class} request shed by admission control: offered load exceeds capacity"
                )
            }
            HatError::Quarantined { segment } => {
                write!(
                    f,
                    "wal segment at lsn {segment} quarantined after failed scrub; \
                     operator intervention required"
                )
            }
        }
    }
}

impl std::error::Error for HatError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// One exemplar of every variant, with its expected classification.
    /// Adding a variant without extending this table fails the
    /// completeness check below, so new errors can't ship unclassified.
    fn classification_table() -> Vec<(HatError, /*retryable*/ bool, /*in_doubt*/ bool)> {
        vec![
            (HatError::WriteConflict { table: "customer" }, true, false),
            (HatError::SerializationFailure, true, false),
            (HatError::TxnClosed, false, false),
            (HatError::DuplicateKey { table: "history" }, false, false),
            (HatError::NotFound { table: "supplier" }, false, false),
            (HatError::UnknownTable("nope".into()), false, false),
            (HatError::TypeMismatch { expected: "u32", got: "str" }, false, false),
            (HatError::Unsupported("index seek".into()), false, false),
            (HatError::EngineStopped, false, false),
            (HatError::InvalidConfig("bad".into()), false, false),
            (HatError::ReplicationTimeout, true, true),
            (HatError::ReplicaUnavailable, true, false),
            (HatError::WalTruncated { requested: 7, oldest: 42 }, false, false),
            (HatError::WalCorrupt { detail: "bad magic".into() }, false, false),
            (HatError::ChecksumMismatch { lsn: 99 }, false, false),
            // Shed commits aborted cleanly before install: retry once the
            // health state machine re-admits writes.
            (HatError::Degraded, true, false),
            // Installed, then the durability wait was voided: like
            // ReplicationTimeout, the client must never re-execute it.
            (HatError::DurabilityInDoubt, true, true),
            // Admission-control shed before any work ran: clean abort,
            // retry only while the client's retry budget lasts.
            (HatError::Overloaded { class: "txn" }, true, false),
            // Scrub-confirmed durable-byte loss: retrying cannot help.
            (HatError::Quarantined { segment: 17 }, false, false),
        ]
    }

    #[test]
    fn every_variant_is_classified() {
        for (err, retryable, in_doubt) in classification_table() {
            assert_eq!(err.is_retryable(), retryable, "is_retryable({err:?})");
            assert_eq!(err.is_commit_in_doubt(), in_doubt, "is_commit_in_doubt({err:?})");
            // Commit-in-doubt implies the connection-level retry class:
            // the client reconnects, but must not re-execute blindly.
            if err.is_commit_in_doubt() {
                assert!(err.is_retryable(), "{err:?}");
            }
        }
    }

    #[test]
    fn classification_table_is_complete() {
        // Exhaustive match: a new variant breaks this compile until it is
        // added here AND to `classification_table`.
        let table = classification_table();
        for (err, _, _) in &table {
            let covered = match err {
                HatError::WriteConflict { .. }
                | HatError::SerializationFailure
                | HatError::TxnClosed
                | HatError::DuplicateKey { .. }
                | HatError::NotFound { .. }
                | HatError::UnknownTable(_)
                | HatError::TypeMismatch { .. }
                | HatError::Unsupported(_)
                | HatError::EngineStopped
                | HatError::InvalidConfig(_)
                | HatError::ReplicationTimeout
                | HatError::ReplicaUnavailable
                | HatError::WalTruncated { .. }
                | HatError::WalCorrupt { .. }
                | HatError::ChecksumMismatch { .. }
                | HatError::Degraded
                | HatError::DurabilityInDoubt
                | HatError::Overloaded { .. }
                | HatError::Quarantined { .. } => true,
            };
            assert!(covered);
        }
        // Every variant appears in the table exactly once (by discriminant).
        let discriminants: std::collections::HashSet<std::mem::Discriminant<HatError>> =
            table.iter().map(|(e, _, _)| std::mem::discriminant(e)).collect();
        assert_eq!(discriminants.len(), table.len(), "duplicate table entries");
        assert_eq!(discriminants.len(), 19, "table must cover all 19 variants");
    }

    #[test]
    fn display_is_informative() {
        let e = HatError::WriteConflict { table: "supplier" };
        assert!(e.to_string().contains("supplier"));
        let e = HatError::UnknownTable("nope".into());
        assert!(e.to_string().contains("nope"));
        let e = HatError::ReplicationTimeout;
        assert!(e.to_string().contains("in doubt"));
        let e = HatError::WalTruncated { requested: 3, oldest: 9 };
        assert!(e.to_string().contains('3') && e.to_string().contains('9'));
        let e = HatError::WalCorrupt { detail: "short header".into() };
        assert!(e.to_string().contains("short header"));
        let e = HatError::ChecksumMismatch { lsn: 12 };
        assert!(e.to_string().contains("12") && e.to_string().contains("checksum"));
        let e = HatError::Degraded;
        assert!(e.to_string().contains("degraded"));
        let e = HatError::DurabilityInDoubt;
        assert!(e.to_string().contains("in doubt"));
        let e = HatError::Overloaded { class: "query" };
        assert!(e.to_string().contains("query") && e.to_string().contains("admission"));
        let e = HatError::Quarantined { segment: 17 };
        assert!(e.to_string().contains("17") && e.to_string().contains("quarantined"));
    }
}
