//! The dynamic value and row model shared by all storage backends.
//!
//! Rows are immutable `Arc<[Value]>` slices: MVCC version chains, the
//! replication log, and the columnar delta store all hold references to the
//! same allocation, so "copying" a committed version anywhere is a pointer
//! bump. Updates build a fresh row (typically by cloning and patching), as
//! a multi-version store must.

use std::sync::Arc;

use crate::error::{HatError, Result};
use crate::ids::TableId;
use crate::money::Money;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit unsigned integer (order keys, transaction numbers).
    U64(u64),
    /// 32-bit unsigned integer (surrogate keys, dates, small numerics).
    U32(u32),
    /// Exact money amount.
    Money(Money),
    /// Interned string. `Arc<str>` so cloning rows is cheap.
    Str(Arc<str>),
    /// Boolean flag (date dimension flags).
    Bool(bool),
}

impl Value {
    /// Human-readable tag, used in error messages.
    pub const fn type_name(&self) -> &'static str {
        match self {
            Value::U64(_) => "u64",
            Value::U32(_) => "u32",
            Value::Money(_) => "money",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
        }
    }

    /// Extracts a `u64`, also widening a `u32`.
    #[inline]
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Value::U64(v) => Ok(*v),
            Value::U32(v) => Ok(*v as u64),
            other => Err(HatError::TypeMismatch { expected: "u64", got: other.type_name() }),
        }
    }

    /// Extracts a `u32`.
    #[inline]
    pub fn as_u32(&self) -> Result<u32> {
        match self {
            Value::U32(v) => Ok(*v),
            other => Err(HatError::TypeMismatch { expected: "u32", got: other.type_name() }),
        }
    }

    /// Extracts a money amount.
    #[inline]
    pub fn as_money(&self) -> Result<Money> {
        match self {
            Value::Money(m) => Ok(*m),
            other => Err(HatError::TypeMismatch { expected: "money", got: other.type_name() }),
        }
    }

    /// Extracts a string slice.
    #[inline]
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(HatError::TypeMismatch { expected: "str", got: other.type_name() }),
        }
    }

    /// Extracts a boolean.
    #[inline]
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(HatError::TypeMismatch { expected: "bool", got: other.type_name() }),
        }
    }

    /// Approximate in-memory footprint in bytes, used for the raw-data-size
    /// report (`figures sizes`).
    pub fn approx_bytes(&self) -> usize {
        match self {
            Value::U64(_) => 8,
            Value::U32(_) => 4,
            Value::Money(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bool(_) => 1,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U32(v)
    }
}
impl From<Money> for Value {
    fn from(v: Money) -> Self {
        Value::Money(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// An immutable, reference-counted row.
pub type Row = Arc<[Value]>;

/// Builds a [`Row`] from an iterator of values.
pub fn row_from<I: IntoIterator<Item = Value>>(values: I) -> Row {
    values.into_iter().collect::<Vec<_>>().into()
}

/// Clones `row` with column `col` replaced by `value`.
pub fn row_with(row: &Row, col: usize, value: Value) -> Row {
    let mut v: Vec<Value> = row.to_vec();
    v[col] = value;
    v.into()
}

/// Logical column type, used by the columnar store to pick a typed vector
/// representation per column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    U64,
    U32,
    Money,
    Str,
    Bool,
}

impl ColumnType {
    /// Whether a [`Value`] matches this column type.
    pub fn matches(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (ColumnType::U64, Value::U64(_))
                | (ColumnType::U32, Value::U32(_))
                | (ColumnType::Money, Value::Money(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }
}

/// Physical column types for each table, in the layout order defined in
/// [`crate::ids`].
pub fn table_column_types(table: TableId) -> &'static [ColumnType] {
    use ColumnType::*;
    match table {
        TableId::Lineorder => &[
            U64, U32, U32, U32, U32, U32, Str, Str, U32, Money, Money, U32,
            Money, Money, U32, U32, Str,
        ],
        TableId::Customer => &[U32, Str, Str, Str, Str, Str, Str, Str, U32],
        TableId::Supplier => &[U32, Str, Str, Str, Str, Str, Str, Money],
        TableId::Part => &[U32, Str, Str, Str, Str, Str, Str, U32, Str, Money],
        TableId::Date => &[
            U32, Str, Str, Str, U32, U32, Str, U32, U32, U32, U32, U32, Str,
            Bool, Bool, Bool,
        ],
        TableId::History => &[U64, U32, Money],
        TableId::Freshness => &[U32, U64],
    }
}

/// Checks that `row` conforms to `table`'s layout (arity and types).
pub fn validate_row(table: TableId, row: &Row) -> Result<()> {
    let types = table_column_types(table);
    if row.len() != types.len() {
        return Err(HatError::TypeMismatch { expected: "row arity", got: "wrong arity" });
    }
    for (t, v) in types.iter().zip(row.iter()) {
        if !t.matches(v) {
            return Err(HatError::TypeMismatch {
                expected: "column type",
                got: v.type_name(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids;

    #[test]
    fn accessors() {
        assert_eq!(Value::U64(7).as_u64().unwrap(), 7);
        assert_eq!(Value::U32(7).as_u64().unwrap(), 7, "u32 widens");
        assert_eq!(Value::U32(3).as_u32().unwrap(), 3);
        assert_eq!(
            Value::Money(Money::from_cents(5)).as_money().unwrap().cents(),
            5
        );
        assert_eq!(Value::from("hi").as_str().unwrap(), "hi");
        assert!(Value::from(true).as_bool().unwrap());
        assert!(Value::U64(1).as_str().is_err());
        assert!(Value::from("x").as_u32().is_err());
    }

    #[test]
    fn row_with_patches_one_column() {
        let r = row_from([Value::U32(1), Value::from("a")]);
        let r2 = row_with(&r, 1, Value::from("b"));
        assert_eq!(r[1].as_str().unwrap(), "a", "original untouched");
        assert_eq!(r2[1].as_str().unwrap(), "b");
        assert_eq!(r2[0].as_u32().unwrap(), 1);
    }

    #[test]
    fn schema_widths_match_layouts() {
        assert_eq!(
            table_column_types(TableId::Lineorder).len(),
            ids::lineorder::WIDTH
        );
        assert_eq!(
            table_column_types(TableId::Customer).len(),
            ids::customer::WIDTH
        );
        assert_eq!(
            table_column_types(TableId::Supplier).len(),
            ids::supplier::WIDTH
        );
        assert_eq!(table_column_types(TableId::Part).len(), ids::part::WIDTH);
        assert_eq!(table_column_types(TableId::Date).len(), ids::date::WIDTH);
        assert_eq!(
            table_column_types(TableId::History).len(),
            ids::history::WIDTH
        );
        assert_eq!(
            table_column_types(TableId::Freshness).len(),
            ids::freshness::WIDTH
        );
    }

    #[test]
    fn validate_row_checks_arity_and_types() {
        let good = row_from([
            Value::U64(1),
            Value::U32(2),
            Value::Money(Money::from_cents(10)),
        ]);
        assert!(validate_row(TableId::History, &good).is_ok());

        let short = row_from([Value::U64(1)]);
        assert!(validate_row(TableId::History, &short).is_err());

        let wrong = row_from([Value::U64(1), Value::U32(2), Value::U32(3)]);
        assert!(validate_row(TableId::History, &wrong).is_err());
    }

    #[test]
    fn approx_bytes() {
        assert_eq!(Value::U64(0).approx_bytes(), 8);
        assert_eq!(Value::from("abcd").approx_bytes(), 4);
    }
}
