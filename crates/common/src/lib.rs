//! `hat-common` — shared foundation types for the HATtrick reproduction.
//!
//! This crate defines the value model used by the storage engines, the
//! fixed-point money type used by the workload, date-key arithmetic for the
//! SSB `DATE` dimension, the global benchmark clock used for freshness
//! measurement, deterministic random-number helpers, and the common error
//! type.
//!
//! Everything here is dependency-light (only `rand` for the RNG helpers) so
//! that every other crate in the workspace can depend on it without pulling
//! in heavyweight machinery.

pub mod clock;
pub mod dates;
pub mod error;
pub mod ids;
pub mod money;
pub mod rng;
pub mod telemetry;
pub mod value;

pub use clock::{BenchClock, Nanos};
pub use dates::DateKey;
pub use error::{HatError, Result};
pub use ids::{ColId, TableId};
pub use money::Money;
pub use value::{Row, Value};
