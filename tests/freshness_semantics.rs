//! End-to-end freshness semantics (§4): engines that guarantee zero
//! freshness must measure zero through the full client-side pipeline, and
//! the asynchronous isolated engine must measure real staleness that the
//! remote-apply mode eliminates.

mod common;

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::freshness::FreshnessAgg;
use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{BenchmarkConfig, Harness};
use hattrick_repro::engine::{HtapEngine, IsoConfig, IsoEngine, ReplicationMode};

fn iso_harness(mode: ReplicationMode, replay_cost: Duration) -> Harness {
    let data = generate(ScaleFactor(0.0008), 3);
    let engine: Arc<dyn HtapEngine> = Arc::new(IsoEngine::new(IsoConfig {
        engine: common::fast_engine_config(),
        mode,
        link_one_way: Duration::from_micros(30),
        replay_cost,
        ..IsoConfig::default()
    }));
    data.load_into(engine.as_ref()).unwrap();
    Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(30),
            measure: Duration::from_millis(200),
            seed: 11,
            reset_between_points: true,
            ..Default::default()
        },
    )
}

#[test]
fn zero_freshness_engines_measure_zero() {
    let data = common::small_data();
    for (name, engine) in common::all_engines() {
        // The isolated engine in this list runs remote-apply: also zero.
        let harness = common::fast_harness(engine, &data);
        let m = harness.run_point(3, 1).unwrap();
        assert!(m.queries() > 0, "{name}: no queries finished");
        let agg = FreshnessAgg::from_samples(&m.freshness);
        assert!(
            agg.p99 < 0.01,
            "{name}: expected zero freshness, p99 = {:.4}s",
            agg.p99
        );
    }
}

#[test]
fn slow_replay_produces_measurable_staleness() {
    // A deliberately slow replica (2ms per record) cannot keep up with
    // several T clients: queries must observe stale snapshots.
    let harness = iso_harness(ReplicationMode::SyncOn, Duration::from_millis(2));
    let m = harness.run_point(4, 1).unwrap();
    assert!(m.queries() > 0);
    let agg = FreshnessAgg::from_samples(&m.freshness);
    assert!(
        agg.max > 0.01,
        "expected staleness with a lagging replica, max = {:.4}s",
        agg.max
    );
}

#[test]
fn remote_apply_eliminates_staleness_at_same_replay_cost() {
    let harness = iso_harness(ReplicationMode::RemoteApply, Duration::from_millis(2));
    let m = harness.run_point(4, 1).unwrap();
    assert!(m.queries() > 0);
    let agg = FreshnessAgg::from_samples(&m.freshness);
    assert!(
        agg.p99 < 0.005,
        "remote-apply must be fresh, p99 = {:.4}s",
        agg.p99
    );
    // And the freshness/performance trade-off: RA commits slower than ON.
    let on = iso_harness(ReplicationMode::SyncOn, Duration::from_millis(2));
    let m_on = on.run_point(4, 1).unwrap();
    assert!(
        m_on.tps > m.tps,
        "ON mode should out-commit remote-apply ({} vs {})",
        m_on.tps,
        m.tps
    );
}

#[test]
fn cow_engine_staleness_is_bounded_by_the_snapshot_interval() {
    use hattrick_repro::engine::{CowConfig, CowEngine};
    let interval = Duration::from_millis(40);
    let data = generate(ScaleFactor(0.0008), 3);
    let engine: Arc<dyn HtapEngine> = Arc::new(CowEngine::new(CowConfig {
        engine: common::fast_engine_config(),
        snapshot_interval: interval,
        fork_pause: Duration::from_micros(50),
    }));
    data.load_into(engine.as_ref()).unwrap();
    let harness = Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(400),
            seed: 13,
            reset_between_points: true,
            ..Default::default()
        },
    );
    let m = harness.run_point(4, 1).unwrap();
    assert!(m.queries() > 0);
    let agg = FreshnessAgg::from_samples(&m.freshness);
    // Bounded: max staleness is about one interval (generous slack for
    // scheduling on one core), and under constant update load most
    // queries see *some* staleness, unlike the always-fresh engines.
    assert!(
        agg.max <= interval.as_secs_f64() * 4.0,
        "staleness {}s exceeds the snapshot-interval bound",
        agg.max
    );
    assert!(
        agg.zero_fraction < 0.9,
        "with a 40ms interval and constant updates, stale queries expected"
    );
}

#[test]
fn staleness_grows_with_transactional_clients() {
    // Figure 8b's trend: more T clients -> more update volume -> the
    // replica lags further -> worse freshness scores.
    let harness = iso_harness(ReplicationMode::SyncOn, Duration::from_micros(800));
    let low = harness.run_point(1, 2).unwrap();
    let high = harness.run_point(6, 2).unwrap();
    let agg_low = FreshnessAgg::from_samples(&low.freshness);
    let agg_high = FreshnessAgg::from_samples(&high.freshness);
    // 10% slack: both means come from wall-clock sampling on a shared
    // core, so the trend assertion must tolerate scheduling noise.
    assert!(
        agg_high.mean >= agg_low.mean * 0.9,
        "mean staleness should not shrink with more T clients: {} -> {}",
        agg_low.mean,
        agg_high.mean
    );
    assert!(agg_high.max > 0.0, "high-T point must show some staleness");
}
