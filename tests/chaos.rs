//! Chaos integration: the full HATtrick mix under a seeded fault schedule,
//! with a replica crash and recovery mid-run.
//!
//! These tests exercise the whole fault-injection stack end to end: the
//! link fault machine and scheduled injector (`netsim`), WAL retention and
//! `subscribe_from` rejoin (`storage`), bounded commit waits surfacing
//! `ReplicationTimeout` (`engine`), and the harness's backoff/retry
//! client drivers (`bench`). The assertions are the ones that matter for
//! correctness under faults: money conservation on the replica snapshot
//! (replication never tears a transaction), zero lost commits after
//! recovery, monotone freshness across crash/restart, and deterministic
//! fault schedules per seed.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use hattrick_repro::bench::harness::{BenchmarkConfig, Harness, RetryPolicy};
use hattrick_repro::bench::workload::{run_transaction, TxnKind, WorkloadState};
use hattrick_repro::common::ids::{supplier, TableId};
use hattrick_repro::common::rng::HatRng;
use hattrick_repro::engine::{
    CommitDurability, InDoubtCause,
    FaultInjector, FaultPlan, FaultPlanConfig, HtapEngine, IsoConfig, IsoEngine, QueryOpts,
    ReplicationMode,
};
use hattrick_repro::query::predicate::Predicate;
use hattrick_repro::query::spec::{AggExpr, QueryId, QuerySpec};

const CHAOS_SEED: u64 = 0xC4A0_5EED;

fn iso_engine(mode: ReplicationMode) -> Arc<IsoEngine> {
    Arc::new(IsoEngine::new(IsoConfig {
        engine: common::fast_engine_config(),
        mode,
        link_one_way: Duration::from_micros(20),
        replay_cost: Duration::from_micros(5),
        commit_timeout: Duration::from_millis(40),
        ..IsoConfig::default()
    }))
}

/// Global sum of a money column, read through the analytical path (i.e.
/// the replica's snapshot).
fn sum_money(engine: &dyn HtapEngine, table: TableId, col: usize) -> i64 {
    let spec = QuerySpec {
        id: QueryId::Q1_1,
        fact: table,
        fact_filter: Predicate::all(),
        joins: vec![],
        group_by: vec![],
        agg: AggExpr::SumMoney(col),
    };
    engine.query(&spec, &QueryOpts::default()).unwrap().groups[0].agg
}

/// The replica-visible freshness entry for `client`.
fn replica_txnnum(engine: &dyn HtapEngine, client: u32) -> u64 {
    let spec = QuerySpec {
        id: QueryId::Q1_1,
        fact: TableId::Supplier,
        fact_filter: Predicate::all(),
        joins: vec![],
        group_by: vec![],
        agg: AggExpr::CountRows,
    };
    let out = engine.query(&spec, &QueryOpts::default()).unwrap();
    out.freshness
        .iter()
        .find(|&&(c, _)| c == client)
        .map(|&(_, txn)| txn)
        .unwrap_or(0)
}

#[test]
fn seeded_fault_schedules_are_deterministic() {
    let cfg = FaultPlanConfig::default();
    let horizon = Duration::from_secs(2);
    let a = FaultPlan::generate(CHAOS_SEED, horizon, &cfg);
    let b = FaultPlan::generate(CHAOS_SEED, horizon, &cfg);
    assert_eq!(a, b, "same seed must replay the same schedule");
    assert!(!a.windows().is_empty(), "a 2s horizon schedules faults");
    let c = FaultPlan::generate(CHAOS_SEED + 1, horizon, &cfg);
    assert_ne!(a, c, "different seeds diverge");
}

#[test]
fn sync_commits_under_partition_fail_fast_as_in_doubt() {
    let data = common::small_data();
    let engine = iso_engine(ReplicationMode::SyncOn);
    data.load_into(engine.as_ref()).unwrap();
    let state = WorkloadState::new(&data.profile);
    let mut rng = HatRng::seeded(CHAOS_SEED);

    engine.link().partition();
    let t0 = Instant::now();
    let receipt = run_transaction(
        engine.as_ref(),
        &data.profile,
        &state,
        &mut rng,
        TxnKind::Payment,
        0,
        1,
    )
    .unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(
        receipt.durability,
        CommitDurability::InDoubt(InDoubtCause::Replication),
        "partitioned sync commit surfaces as in-doubt"
    );
    assert!(!receipt.is_acked());
    // Bounded: roughly the configured 40ms commit timeout, never a hang.
    assert!(elapsed >= Duration::from_millis(40), "{elapsed:?}");
    assert!(elapsed < Duration::from_secs(2), "{elapsed:?}");
    assert_eq!(engine.stats().replication_timeouts, 1);
    // The in-doubt commit is durable on the primary: it counts as a commit.
    assert_eq!(engine.stats().commits, 1);

    // Healed link: the next payment acknowledges within the bound.
    engine.link().heal();
    assert!(run_transaction(
        engine.as_ref(),
        &data.profile,
        &state,
        &mut rng,
        TxnKind::Payment,
        0,
        2,
    )
    .unwrap().is_acked());
    assert_eq!(engine.stats().commits, 2);
}

#[test]
fn chaos_mix_conserves_money_and_loses_no_commits() {
    let data = common::small_data();
    let engine = iso_engine(ReplicationMode::Async);
    let dynamic: Arc<dyn HtapEngine> = engine.clone();
    data.load_into(dynamic.as_ref()).unwrap();
    let harness = Harness::new(
        dynamic.clone(),
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(30),
            measure: Duration::from_millis(300),
            seed: CHAOS_SEED,
            reset_between_points: false,
            retry: RetryPolicy::default(),
            ..BenchmarkConfig::default()
        },
    );
    let loaded_hist: i64 = data
        .history
        .iter()
        .map(|r| r[2].as_money().unwrap().cents())
        .sum();

    // A seeded fault schedule over the whole run: partitions and brownouts
    // on the replication link.
    let plan = FaultPlan::generate(
        CHAOS_SEED,
        Duration::from_millis(400),
        &FaultPlanConfig {
            mean_gap: Duration::from_millis(60),
            min_duration: Duration::from_millis(10),
            max_duration: Duration::from_millis(30),
            ..FaultPlanConfig::default()
        },
    );
    let mut injector = FaultInjector::spawn(plan, Arc::clone(engine.link()));

    // Kill and restart the replica mid-run, concurrently with the client
    // load and the link faults.
    let chaos = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            engine.crash_replica();
            std::thread::sleep(Duration::from_millis(80));
            engine.restart_replica().expect("rejoin from retained WAL");
        })
    };

    let m = harness.run_point(4, 1).unwrap();
    chaos.join().unwrap();
    injector.stop();

    assert!(m.committed() > 0, "the mix made progress under chaos");
    for &s in &m.freshness {
        assert!(s.is_finite() && s >= 0.0, "freshness sample {s}");
    }

    // Recovery: heal everything, let the replica drain, and verify nothing
    // was lost or torn.
    if engine.is_replica_down() {
        engine.restart_replica().unwrap();
    }
    engine.quiesce_replication();
    assert_eq!(engine.stats().replication_backlog, 0, "backlog fully drained");

    // A sentinel commit after recovery must become visible on the replica:
    // the freshness watermark survived the crash.
    let state = WorkloadState::new(&data.profile);
    let mut rng = HatRng::seeded(CHAOS_SEED ^ 1);
    assert!(run_transaction(
        dynamic.as_ref(),
        &data.profile,
        &state,
        &mut rng,
        TxnKind::Payment,
        7,
        1,
    )
    .unwrap().is_acked());
    engine.quiesce_replication();
    assert_eq!(replica_txnnum(dynamic.as_ref(), 7), 1, "sentinel visible");

    // Money conservation on the replica snapshot: every payment moved
    // S_YTD and H_AMOUNT atomically, so a torn or lost replicated
    // transaction would break this equality.
    let ytd = sum_money(dynamic.as_ref(), TableId::Supplier, supplier::YTD);
    let new_hist = sum_money(dynamic.as_ref(), TableId::History, 2) - loaded_hist;
    assert_eq!(ytd, new_hist, "supplier YTD vs replicated history");
    assert!(ytd > 0, "payments actually moved money");
}

#[test]
fn replica_freshness_is_monotone_across_crash_and_recovery() {
    let data = common::small_data();
    let engine = iso_engine(ReplicationMode::Async);
    data.load_into(engine.as_ref()).unwrap();

    let writer = {
        let engine = Arc::clone(&engine);
        let profile = data.profile.clone();
        let state = WorkloadState::new(&data.profile);
        std::thread::spawn(move || {
            let mut rng = HatRng::seeded(CHAOS_SEED ^ 2);
            for txnnum in 1..=60u64 {
                assert!(run_transaction(
                    engine.as_ref(),
                    &profile,
                    &state,
                    &mut rng,
                    TxnKind::Payment,
                    0,
                    txnnum,
                )
                .unwrap().is_acked());
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    // Poll the replica's view of client 0 while the writer runs, crashing
    // and restarting the replica along the way. The observed sequence
    // number must never move backwards.
    let mut last = 0u64;
    for i in 0..90 {
        let seen = replica_txnnum(engine.as_ref(), 0);
        assert!(seen >= last, "freshness went backwards: {seen} < {last}");
        last = seen;
        if i == 25 {
            engine.crash_replica();
        }
        if i == 50 {
            engine.restart_replica().unwrap();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    writer.join().unwrap();
    engine.quiesce_replication();
    assert_eq!(replica_txnnum(engine.as_ref(), 0), 60, "all commits applied");
}
