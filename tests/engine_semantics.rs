//! Engine-level semantic edge cases across all four designs: session
//! lifecycle, index-profile fallbacks, snapshot stability of long
//! analytical reads, and engine-specific behaviours.

mod common;

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::workload::{run_transaction, TxnKind, WorkloadState};
use hattrick_repro::common::ids::{customer, TableId};
use hattrick_repro::common::rng::HatRng;
use hattrick_repro::common::value::row_with;
use hattrick_repro::common::{HatError, Value};
use hattrick_repro::engine::{
    DurabilityMode, EngineConfig, HtapEngine, IndexProfile, LearnerConfig, LearnerEngine,
    LearnerProfile, NamedIndex, QueryOpts, ShdEngine,
};
use hattrick_repro::query::spec::QueryId;
use hattrick_repro::query::ssb;

#[test]
fn session_is_single_use() {
    let data = common::small_data();
    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        let mut s = engine.begin();
        let (rid, row) = s.lookup_u32(NamedIndex::CustomerPk, 1).unwrap().unwrap();
        s.update(TableId::Customer, rid, row).unwrap();
        assert!(s.commit().unwrap().is_acked());
        // A fresh session works; operations on it after abort fail.
        let s2 = engine.begin();
        s2.abort();
        // (s2 consumed; start another and check TxnClosed is surfaced via
        // the session's own lifecycle.)
        let s3 = engine.begin();
        let receipt = s3.commit().unwrap_or_else(|_| panic!("{name}: read-only commit"));
        assert!(receipt.is_acked(), "{name}: read-only commits ack");
        assert!(receipt.ts > 0, "{name}: commit timestamps are positive");
    }
}

#[test]
fn no_index_profile_falls_back_to_scans_with_same_answers() {
    let data = generate(ScaleFactor(0.0008), 77);
    let make = |profile| {
        let engine = ShdEngine::new(
            EngineConfig::builder()
                .indexes(profile)
                .durability(DurabilityMode::Off)
                .build(),
        );
        data.load_into(&engine).unwrap();
        engine
    };
    let indexed = make(IndexProfile::All);
    let scanning = make(IndexProfile::None);
    for key in [1u32, 7, 13] {
        let mut a = indexed.begin();
        let mut b = scanning.begin();
        let via_index = a.lookup_u32(NamedIndex::CustomerPk, key).unwrap().unwrap();
        let via_scan = b.lookup_u32(NamedIndex::CustomerPk, key).unwrap().unwrap();
        assert_eq!(via_index.1, via_scan.1, "custkey {key}");
        let name = format!("Customer#{key:09}");
        let via_index = a.lookup_str(NamedIndex::CustomerName, &name).unwrap().unwrap();
        let via_scan = b.lookup_str(NamedIndex::CustomerName, &name).unwrap().unwrap();
        assert_eq!(via_index.1, via_scan.1, "name {name}");
        // Supplier path too.
        let sname = "Supplier#000000003";
        let via_index = a.lookup_str(NamedIndex::SupplierName, sname).unwrap().unwrap();
        let via_scan = b.lookup_str(NamedIndex::SupplierName, sname).unwrap().unwrap();
        assert_eq!(via_index.1, via_scan.1);
        a.abort();
        b.abort();
    }
    // Missing keys miss on both paths.
    let mut a = indexed.begin();
    let mut b = scanning.begin();
    assert!(a.lookup_u32(NamedIndex::PartPk, 9_999_999).unwrap().is_none());
    assert!(b.lookup_u32(NamedIndex::PartPk, 9_999_999).unwrap().is_none());
    a.abort();
    b.abort();
}

#[test]
fn writes_in_aborted_sessions_leave_no_trace() {
    let data = common::small_data();
    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        let before = engine.query(&ssb::query(QueryId::Q2_1), &QueryOpts::default()).unwrap();
        let mut s = engine.begin();
        let (rid, row) = s.lookup_u32(NamedIndex::CustomerPk, 2).unwrap().unwrap();
        s.update(
            TableId::Customer,
            rid,
            row_with(&row, customer::PAYMENTCNT, Value::U32(77)),
        )
        .unwrap();
        s.abort();
        let after = engine.query(&ssb::query(QueryId::Q2_1), &QueryOpts::default()).unwrap();
        assert_eq!(before.groups, after.groups, "{name}");
        // Row unchanged for the next reader.
        let mut s = engine.begin();
        let (_, row) = s.lookup_u32(NamedIndex::CustomerPk, 2).unwrap().unwrap();
        assert_eq!(row[customer::PAYMENTCNT].as_u32().unwrap(), 0, "{name}");
        s.abort();
    }
}

#[test]
fn analytical_snapshot_is_stable_against_concurrent_commits() {
    // Start a query while a writer storm runs: the executor's fact scan
    // and its freshness side-read must agree on one snapshot — the
    // freshness vector a query returns can never be *ahead* of the rows it
    // scanned... verified here by checking monotonic relationship between
    // successive queries' vectors and the registry of committed txns.
    let data = common::small_data();
    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        let state = WorkloadState::new(&data.profile);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let engine_ref = Arc::clone(&engine);
            let profile = &data.profile;
            let state = &state;
            let stop_ref = &stop;
            scope.spawn(move || {
                let mut rng = HatRng::seeded(31);
                let mut txnnum = 0;
                while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                    txnnum += 1;
                    let _ = run_transaction(
                        engine_ref.as_ref(),
                        profile,
                        state,
                        &mut rng,
                        TxnKind::Payment,
                        0,
                        txnnum,
                    );
                }
            });
            let mut last_seen = 0u64;
            for _ in 0..20 {
                let out = engine.query(&ssb::query(QueryId::Q1_1), &QueryOpts::default()).unwrap();
                let seen = out
                    .freshness
                    .iter()
                    .find(|(c, _)| *c == 0)
                    .map(|(_, t)| *t)
                    .unwrap_or(0);
                assert!(
                    seen >= last_seen,
                    "{name}: freshness went backwards {last_seen} -> {seen}"
                );
                last_seen = seen;
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}

#[test]
fn learner_distributed_profile_behaves_like_single_but_slower() {
    let data = generate(ScaleFactor(0.0008), 5);
    let mk = |profile| {
        let engine = LearnerEngine::new(LearnerConfig {
            profile,
            apply_cost: Duration::from_micros(5),
            ..LearnerConfig::default()
        });
        data.load_into(&engine).unwrap();
        engine
    };
    let single = mk(LearnerProfile::SingleNode);
    let dist = mk(LearnerProfile::Distributed);
    // Same query answers.
    for id in [QueryId::Q1_1, QueryId::Q3_1] {
        let a = single.query(&ssb::query(id), &QueryOpts::default()).unwrap();
        let b = dist.query(&ssb::query(id), &QueryOpts::default()).unwrap();
        assert_eq!(a.groups, b.groups, "{}", id.label());
    }
    // Same transactional semantics (commit succeeds, learner catches up).
    for engine in [&single, &dist] {
        let state = WorkloadState::new(&data.profile);
        let mut rng = HatRng::seeded(6);
        assert!(run_transaction(engine, &data.profile, &state, &mut rng, TxnKind::NewOrder, 0, 1)
            .unwrap().is_acked());
        engine.quiesce_learner();
        assert_eq!(engine.stats().replication_backlog, 0);
    }
}

#[test]
fn duplicate_freshness_update_in_one_txn_is_idempotent_lockwise() {
    // A transaction may lock the same row twice (same owner) without
    // conflicting with itself.
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    data.load_into(engine.as_ref()).unwrap();
    let mut s = engine.begin();
    let row = |n| {
        hattrick_repro::common::value::row_from([Value::U32(0), Value::U64(n)])
    };
    s.update(TableId::Freshness, 0, row(1)).unwrap();
    s.update(TableId::Freshness, 0, row(2)).unwrap();
    assert!(s.commit().unwrap().is_acked());
    // Final state is the last write.
    let out = engine.query(&ssb::query(QueryId::Q1_1), &QueryOpts::default()).unwrap();
    assert_eq!(out.freshness.iter().find(|(c, _)| *c == 0).unwrap().1, 2);
}

#[test]
fn not_found_errors_are_not_retryable() {
    let e = HatError::NotFound { table: "customer" };
    assert!(!e.is_retryable());
}
