//! Elastic T/A core scheduler suite.
//!
//! The paper's frontier is *descriptive*: every point holds a fixed
//! split of cores between the transactional and analytical populations,
//! so the whole chart is a menu of static allocations. The elastic
//! scheduler (`hattrick::sched`) turns the split into a *control*
//! variable, reassigning a fixed core budget at tick granularity. These
//! tests check the contract end to end:
//!
//! 1. **Determinism** — the controller is pure in (state, signal): the
//!    same seed and the same arrival schedule produce a byte-identical
//!    decision trace, run after run.
//! 2. **Anti-flap** — under constant load (calm or hot) the split moves
//!    a bounded number of times and then parks; a hysteresis band tick
//!    never counts toward a give-back.
//! 3. **The frontier push** — on the step-burst schedule, the elastic
//!    run beats every *eligible* static split: ≥15% more goodput than
//!    the static split with equal analytical allocation, and strictly
//!    more analytical allocation than the static split with equal
//!    goodput. A static point can have one or the other; elastic has
//!    both, which is exactly "outside the static frontier".
//! 4. **Trace structure** — the burst shows up in the decision trace as
//!    a pressure move, the calm aftermath as a give-back, and the
//!    artifact's `t_cores`/`a_cores` columns always sum to the budget.

mod common;

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{
    BenchmarkConfig, Harness, OpenLoopMeasurement, RetryBudgetConfig, RetryPolicy,
};
use hattrick_repro::bench::openloop::{arrival_schedule, ArrivalShape, OpenLoopConfig};
use hattrick_repro::bench::sched::{
    split_changes, trace_lines, ElasticController, SchedPolicy, SchedReason,
    SchedSignal, SchedTarget,
};
use hattrick_repro::bench::report;
use hattrick_repro::common::telemetry::names;
use hattrick_repro::engine::{EngineConfig, ShdEngine};

/// Tick layout of the elastic step schedule: a calm lead-in, a long 10×
/// burst (half the run — the regime a static split must be wrong for),
/// and a calm tail for the give-back.
const TICK: Duration = Duration::from_millis(10);
const TICKS: u32 = 60;
const BURST_FROM: u32 = 15;
const BURST_UNTIL: u32 = 45;

/// The controller works over 4 cores with a T floor of 2: the split
/// walks between (2,2) in calm and (3,1) under pressure, so both
/// pinned comparison arms are one reassignment away.
const BUDGET: u32 = 4;
const SERVICE_PAD: Duration = Duration::from_millis(1);
const DEADLINE: Duration = Duration::from_millis(25);

fn sched_target() -> SchedTarget {
    SchedTarget { budget: BUDGET, t_floor: 2, ..SchedTarget::default() }
}

/// Offered base load: 50% of a two-worker pool's *measured* capacity —
/// calm at the (2,2) split, ~5× over it during the burst. Calibrated
/// once per process (same approach as tests/overload.rs) so the ratios
/// hold across debug/release builds and machine speeds.
fn base_rate() -> f64 {
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        let data = generate(ScaleFactor(0.001), 0xD5);
        let engine = ShdEngine::new(EngineConfig::default());
        data.load_into(&engine).unwrap();
        let h = Harness::new(
            Arc::new(engine),
            data.profile.clone(),
            BenchmarkConfig {
                seed: 0xCA11,
                warmup: Duration::from_millis(50),
                measure: Duration::from_millis(250),
                ..BenchmarkConfig::default()
            },
        );
        let tps = h.run_point(1, 0).unwrap().tps.max(50.0);
        let per_req = 1.0 / tps + SERVICE_PAD.as_secs_f64();
        0.5 * 2.0 / per_req
    })
}

/// Serializes the open-loop runs (wall-clock-sensitive; see
/// tests/overload.rs for the rationale).
static DRIVER: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    DRIVER.lock().unwrap_or_else(|e| e.into_inner())
}

/// Retries a timing-sensitive experiment up to three times; a real
/// scheduler regression fails all three.
fn with_noise_retries(f: impl Fn()) {
    for attempt in 0..3 {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f)) {
            Ok(()) => return,
            Err(payload) => {
                if attempt == 2 {
                    std::panic::resume_unwind(payload);
                }
                eprintln!("timing-sensitive attempt {attempt} failed; retrying");
            }
        }
    }
}

fn sched_harness() -> Harness {
    let data = generate(ScaleFactor(0.001), 0xD5);
    let engine = ShdEngine::new(EngineConfig::default());
    data.load_into(&engine).unwrap();
    Harness::new(
        Arc::new(engine),
        data.profile.clone(),
        BenchmarkConfig {
            seed: 0xBEEF,
            retry: RetryPolicy {
                budget: Some(RetryBudgetConfig { cap: 50, refill_per_success: 0.1 }),
                ..RetryPolicy::default()
            },
            ..BenchmarkConfig::default()
        },
    )
}

fn step_config() -> OpenLoopConfig {
    OpenLoopConfig {
        arrival_rate: base_rate(),
        shape: ArrivalShape::Step {
            mult: 10.0,
            from_tick: BURST_FROM,
            until_tick: BURST_UNTIL,
        },
        deadline: DEADLINE,
        // Ignored by elastic/pinned runs (the budget is the capacity
        // knob); used by none of the arms here.
        workers: 4,
        queue_cap: 4096,
        ticks: TICKS,
        tick: TICK,
        service_pad: SERVICE_PAD,
    }
}

fn run(policy: &SchedPolicy) -> OpenLoopMeasurement {
    sched_harness().run_open_loop_sched(&step_config(), policy).unwrap()
}

/// Replays the seeded arrival schedule through a fixed, deterministic
/// queueing model (capacity per tick, bounded queue) to produce the
/// signal sequence a live run would approximately see — the input for
/// pure-simulation determinism checks, immune to thread timing.
fn modeled_signals(ol: &OpenLoopConfig, seed: u64) -> Vec<SchedSignal> {
    let schedule = arrival_schedule(ol, seed);
    let (cap_per_tick, queue_cap) = (40u64, 200u64);
    let mut backlog = 0u64;
    schedule
        .iter()
        .map(|&n| {
            let avail = backlog + n;
            let served = avail.min(cap_per_tick);
            backlog = avail - served;
            let shed = backlog.saturating_sub(queue_cap);
            backlog -= shed;
            SchedSignal { offered: n, goodput: served, shed, backlog, a_done: 1 }
        })
        .collect()
}

#[test]
fn controller_trace_is_byte_identical_across_runs() {
    // Same seed, same arrival schedule, three independent simulations:
    // the decision traces agree byte for byte. This is the determinism
    // contract `SchedDecision::line` exists for.
    let ol = step_config();
    let signals = modeled_signals(&ol, 0xBEEF);
    let target = sched_target();
    let traces: Vec<String> = (0..3)
        .map(|_| trace_lines(&ElasticController::simulate(target, 0xBEEF, &signals)))
        .collect();
    assert_eq!(traces[0], traces[1]);
    assert_eq!(traces[1], traces[2]);
    assert!(!traces[0].is_empty());

    // A different arrival seed changes the schedule and hence (via the
    // model) the signals — but never the invariants: every decision
    // still sums to the budget and starts from the same split.
    let other = ElasticController::simulate(target, 0xBEEF, &modeled_signals(&ol, 0xF00D));
    assert!(other.iter().all(|d| d.t_cores + d.a_cores == BUDGET));
    assert_eq!(other[0].reason, SchedReason::Init);
}

#[test]
fn anti_flap_bounds_reassignments_under_constant_load() {
    // Property over many controller seeds: 100 ticks of constant load
    // (calm or hot) move the split a bounded number of times, and the
    // tail is flat — the dwell + hysteresis anti-flap contract.
    let target = SchedTarget::with_budget(8);
    let calm = SchedSignal { offered: 10, goodput: 10, shed: 0, backlog: 0, a_done: 2 };
    let hot = SchedSignal { offered: 400, goodput: 40, shed: 90, backlog: 900, a_done: 0 };
    for seed in 0..32u64 {
        for (label, sig, bound) in [("calm", calm, 7usize), ("hot", hot, 3usize)] {
            let trace = ElasticController::simulate(target, seed, &vec![sig; 100]);
            let changes = split_changes(&trace);
            assert!(
                changes <= bound,
                "seed {seed}: {label} load flapped {changes} times (bound {bound})"
            );
            assert_eq!(
                split_changes(&trace[60..]),
                0,
                "seed {seed}: {label} split still moving after convergence"
            );
        }
    }
}

#[test]
fn elastic_pushes_the_frontier_past_every_pinned_split() {
    let _x = exclusive();
    with_noise_retries(frontier_push_case);
}

fn frontier_push_case() {
    let target = sched_target();
    let elastic = run(&SchedPolicy::Elastic { target });
    // The two eligible static splits of the same budget: the one that
    // matches elastic's calm analytical allocation, and the one that
    // matches its burst-time serving capacity.
    let even = run(&SchedPolicy::Pinned { budget: BUDGET, t_cores: 2 });
    let t_heavy = run(&SchedPolicy::Pinned { budget: BUDGET, t_cores: 3 });

    // Same seed ⇒ identical offered schedules across all three arms.
    let offered = |m: &OpenLoopMeasurement| -> Vec<u64> {
        m.ticks.iter().map(|t| t.offered).collect()
    };
    assert_eq!(offered(&elastic), offered(&even));
    assert_eq!(offered(&elastic), offered(&t_heavy));

    // Mean analytical allocation over the run, from the decision trace.
    let mean_a = |m: &OpenLoopMeasurement| -> f64 {
        m.decisions.iter().map(|d| f64::from(d.a_cores)).sum::<f64>()
            / m.decisions.len() as f64
    };

    // vs the even split (equal-or-better analytical allocation than
    // elastic at every calm tick): the burst is where it is wrong, and
    // elastic must convert the reassigned core into ≥15% more goodput.
    assert!(
        elastic.goodput() as f64 >= 1.15 * even.goodput() as f64,
        "elastic goodput {} must beat the even pinned split {} by ≥15%",
        elastic.goodput(),
        even.goodput()
    );

    // vs the T-heavy split (equal serving capacity during the burst):
    // elastic must not give up meaningful goodput for its analytical
    // gains...
    assert!(
        elastic.goodput() as f64 >= 0.85 * t_heavy.goodput() as f64,
        "elastic goodput {} gave up too much vs T-heavy pinned {}",
        elastic.goodput(),
        t_heavy.goodput()
    );
    // ...while holding strictly more analytical allocation (the calm
    // majority of the run sits at (2,2) vs pinned (3,1)).
    assert!(
        mean_a(&elastic) >= 1.3 && (mean_a(&t_heavy) - 1.0).abs() < 1e-9,
        "elastic mean a_cores {:.2} must exceed the T-heavy split's 1.0",
        mean_a(&elastic)
    );
    // The analytical side did real work under the moving cap.
    assert!(elastic.a_queries() > 0, "elastic analytical driver ran");

    // The report line carries the same story.
    let line = report::sched_line(&elastic.point.metrics).expect("elastic runs report");
    assert!(line.contains("decisions"), "{line}");
    assert_eq!(
        elastic.point.metrics.counter(names::SCHED_A_QUERIES),
        elastic.a_queries()
    );
}

#[test]
fn elastic_trace_follows_the_burst_and_lands_in_the_artifact() {
    let _x = exclusive();
    with_noise_retries(trace_structure_case);
}

fn trace_structure_case() {
    let target = sched_target();
    let m = run(&SchedPolicy::Elastic { target });

    // One decision per tick, numbered by the tick it takes effect in.
    assert_eq!(m.decisions.len(), TICKS as usize);
    for (k, d) in m.decisions.iter().enumerate() {
        assert_eq!(d.tick as usize, k);
        assert_eq!(d.t_cores + d.a_cores, BUDGET, "budget conserved at tick {k}");
    }
    assert_eq!(m.decisions[0].reason, SchedReason::Init);

    // The burst forces at least one pressure move inside the burst
    // window (plus one tick of signal latency), and the controller ends
    // T-heavy at some point in it.
    let burst = &m.decisions[BURST_FROM as usize..=BURST_UNTIL as usize];
    assert!(
        burst.iter().any(|d| d.reason == SchedReason::Pressure),
        "a 10x burst must register as pressure: {}",
        trace_lines(&m.decisions)
    );
    assert!(
        burst.iter().any(|d| d.t_cores == BUDGET - 1),
        "the controller must reach the T-heavy split during the burst"
    );
    // The calm tail gives the core back (dwell ≤ 2×dwell_ticks after
    // the burst, first-dwell bonus already consumed or not needed).
    let tail = &m.decisions[(BURST_UNTIL + 2 * target.dwell_ticks) as usize..];
    assert!(
        tail.iter().any(|d| d.a_cores == 2),
        "the calm tail must give the core back: {}",
        trace_lines(&m.decisions)
    );
    // Anti-flap held live, not just in simulation.
    assert!(
        split_changes(&m.decisions) <= 8,
        "live run flapped: {}",
        trace_lines(&m.decisions)
    );

    // The allocation trace rides the timeseries into the artifact
    // (schema v6 columns), and static runs keep the columns at zero.
    assert_eq!(m.point.timeseries.len(), TICKS as usize);
    for (s, d) in m.point.timeseries.iter().zip(&m.decisions) {
        assert_eq!((s.t_cores, s.a_cores), (d.t_cores, d.a_cores));
    }
    assert_eq!(m.point.a_clients, 1);
    let static_m = sched_harness().run_open_loop(&step_config()).unwrap();
    assert!(static_m.point.timeseries.iter().all(|s| s.t_cores == 0 && s.a_cores == 0));
    assert!(static_m.decisions.is_empty());
    assert!(report::sched_line(&static_m.point.metrics).is_none());
}

#[test]
fn pinned_runs_carry_a_constant_trace_and_budget_is_validated() {
    let _x = exclusive();
    let m = run(&SchedPolicy::Pinned { budget: BUDGET, t_cores: 3 });
    assert_eq!(m.decisions.len(), TICKS as usize);
    assert!(m.decisions.iter().all(|d| (d.t_cores, d.a_cores) == (3, 1)));
    assert_eq!(split_changes(&m.decisions), 0);
    assert_eq!(m.point.a_clients, 1);

    // An out-of-range budget is a typed config error, not a panic.
    let err = sched_harness()
        .run_open_loop_sched(
            &step_config(),
            &SchedPolicy::Elastic { target: SchedTarget::with_budget(65) },
        )
        .unwrap_err();
    assert!(
        matches!(err, hattrick_repro::common::HatError::InvalidConfig(_)),
        "got {err:?}"
    );
    let err = sched_harness()
        .run_open_loop_sched(
            &step_config(),
            &SchedPolicy::Pinned { budget: 65, t_cores: 60 },
        )
        .unwrap_err();
    assert!(
        matches!(err, hattrick_repro::common::HatError::InvalidConfig(_)),
        "got {err:?}"
    );
}
