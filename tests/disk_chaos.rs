//! Disk-fault chaos harness for the durable WAL wired through the shared
//! engine: the storage-failure counterpart of `crash_recovery.rs`.
//!
//! Each scenario arms a [`DiskFaultPlan`] (transient EIO, fsync failure,
//! persistent ENOSPC, write stalls) against the WAL of a `ShdEngine` in
//! `DurabilityMode::Fsync`, drives explicit payment transactions through
//! the faults with client-side retries, and checks the degradation
//! contract:
//!
//! 1. **Graceful degradation** — storage faults surface as typed errors,
//!    never as a panic or a process crash: commits shed *at admission*
//!    abort cleanly with retryable [`HatError::Degraded`], while a fault
//!    that voids the durability wait *after* install is the
//!    commit-in-doubt [`HatError::DurabilityInDoubt`]; analytics keep
//!    serving throughout.
//! 2. **Recovery to Healthy** — once the fault window passes, the
//!    background scrubber re-verifies the sealed segments, probes the
//!    device, and the health gauge returns to `Healthy`; transactional
//!    throughput recovers in the same run.
//! 3. **Durability invariants across faults and crashes** — every
//!    acknowledged payment survives reopen, recovery invents nothing,
//!    and supplier YTD equals the sum of recovered HISTORY amounts.
//!
//! Scenarios are seed-parameterized; `HAT_DISK_SEED=<n>` pins a single
//! seed (the CI matrix fans out over seeds this way). WAL directories
//! live under `target/disk-chaos/` and are kept on failure so the
//! failing seed's evidence can be archived.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hattrick_repro::common::ids::{history, supplier, TableId};
use hattrick_repro::common::rng::HatRng;
use hattrick_repro::common::value::{row_from, row_with};
use hattrick_repro::common::{HatError, Money, Value};
use hattrick_repro::engine::{
    DiskFault, DiskFaultKind, DiskFaultPlan, DurabilityMode, EngineConfig, HealthState,
    HtapEngine, KillPoint, NamedIndex, QueryOpts, ShdEngine, WalConfig,
};
use hattrick_repro::query::{AggExpr, Predicate, QueryId, QuerySpec};

const NSUPP: u32 = 8;

/// Seeds to run each scenario under. `HAT_DISK_SEED` pins one (CI runs a
/// matrix over it); the default trio keeps local runs fast but varied.
fn seeds() -> Vec<u64> {
    match std::env::var("HAT_DISK_SEED") {
        Ok(s) => vec![s.parse().expect("HAT_DISK_SEED must be an integer")],
        Err(_) => vec![0x11, 0x2F, 0x63],
    }
}

/// A fresh WAL directory under `target/` (predictable path for CI
/// artifact collection). Leftovers from a previous run are removed.
fn wal_dir(tag: &str, seed: u64) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("disk-chaos")
        .join(format!("{tag}-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Engine config with the given fault plan armed against the WAL. Small
/// segments cross rotation boundaries mid-fault; a fast scrubber keeps
/// the Degraded window (and so the test) short.
fn chaos_config(dir: &Path, plan: DiskFaultPlan) -> EngineConfig {
    EngineConfig::builder()
        .durability(DurabilityMode::Fsync(WalConfig {
            segment_bytes: 4096,
            fault_plan: plan,
            max_backlog: 64,
            scrub_interval: Duration::from_millis(1),
            ..WalConfig::new(dir)
        }))
        .build()
}

fn supplier_row(k: u32) -> hattrick_repro::common::Row {
    row_from([
        Value::U32(k),
        Value::from(format!("Supplier#{k:09}")),
        Value::from("addr"),
        Value::from("CITY0"),
        Value::from("CHINA"),
        Value::from("ASIA"),
        Value::from("phone"),
        Value::Money(Money::ZERO),
    ])
}

/// Opens (or recovers) an engine on `dir` with the given fault plan and
/// loads the base suppliers on a fresh directory.
fn open_engine(dir: &Path, plan: DiskFaultPlan, fresh: bool) -> ShdEngine {
    let engine = ShdEngine::try_new(chaos_config(dir, plan)).expect("open engine");
    if fresh {
        let rows: Vec<_> = (1..=NSUPP).map(supplier_row).collect();
        engine.load(TableId::Supplier, &mut rows.into_iter()).unwrap();
        engine.finish_load().unwrap();
    }
    engine
}

/// One payment: supplier YTD += amount, plus a HISTORY row carrying the
/// (unique) amount. Returns Err if the commit was not acknowledged.
fn payment(engine: &ShdEngine, suppkey: u32, amount_cents: i64) -> Result<(), HatError> {
    let mut s = engine.begin();
    let (rid, row) = s
        .lookup_u32(NamedIndex::SupplierPk, suppkey)?
        .expect("supplier exists");
    let ytd = row[supplier::YTD].as_money().expect("typed");
    s.update(
        TableId::Supplier,
        rid,
        row_with(&row, supplier::YTD, Value::Money(ytd + Money::from_cents(amount_cents))),
    )?;
    s.insert(
        TableId::History,
        row_from([
            Value::U64(amount_cents as u64),
            Value::U32(suppkey),
            Value::Money(Money::from_cents(amount_cents)),
        ]),
    )?;
    // The receipt API reports a voided durability wait as an in-doubt
    // receipt, not an error; this suite's accounting needs the old
    // acked/in-doubt split, so map it back onto the error taxonomy.
    match s.commit()? {
        r if r.is_acked() => Ok(()),
        _ => Err(HatError::DurabilityInDoubt),
    }
}

/// The recovered HISTORY amounts, sorted.
fn recovered_amounts(engine: &ShdEngine) -> Vec<i64> {
    let k = engine.kernel();
    let ts = k.oracle.read_ts();
    let mut amounts = Vec::new();
    k.db.store(TableId::History).scan(ts, |_, row| {
        amounts.push(row[history::AMOUNT].as_money().expect("typed").cents());
    });
    amounts.sort_unstable();
    amounts
}

/// Total supplier YTD (equals the sum of applied payment amounts).
fn total_ytd(engine: &ShdEngine) -> i64 {
    let k = engine.kernel();
    let ts = k.oracle.read_ts();
    let mut sum = 0i64;
    k.db.store(TableId::Supplier).scan(ts, |_, row| {
        sum += row[supplier::YTD].as_money().expect("typed").cents();
    });
    sum
}

/// A trivial analytical plan (global `count(*)` over LINEORDER): enough
/// to prove the read path serves while the write path is shedding.
fn count_query() -> QuerySpec {
    QuerySpec {
        id: QueryId::Q1_1,
        fact: TableId::Lineorder,
        fact_filter: Predicate::all(),
        joins: Vec::new(),
        group_by: Vec::new(),
        agg: AggExpr::CountRows,
    }
}

/// Outcome of a chaos scenario's traffic phase.
#[derive(Debug)]
struct Traffic {
    /// Amounts of payments whose commit returned Ok.
    acked: Vec<i64>,
    /// Amounts of every payment attempted (acked or not). A payment that
    /// failed post-install ([`HatError::DurabilityInDoubt`]: the fsync
    /// fault hit after `commit()` installed the versions) may
    /// legitimately be recovered, so ghosts are judged against this set,
    /// not against `acked`.
    attempted: Vec<i64>,
}

/// Drives payments until `want` of them are acknowledged, retrying
/// through failures with a fresh (unique) amount per attempt — shed
/// commits aborted cleanly, and commit-in-doubt outcomes must never be
/// re-executed verbatim anyway. Returns Err if the budget runs out
/// before `want` acks (a fault window that never clears).
fn drive_acked(
    engine: &ShdEngine,
    seed: u64,
    want: usize,
    start_amount: i64,
) -> Result<Traffic, Traffic> {
    let mut rng = HatRng::seeded(seed);
    let mut acked = Vec::new();
    let mut attempted = Vec::new();
    let mut amount = start_amount;
    let mut consecutive_failures = 0u32;
    for _ in 0..50_000 {
        if acked.len() >= want {
            return Ok(Traffic { acked, attempted });
        }
        amount += 1;
        let supp = rng.range_u32(1, NSUPP);
        attempted.push(amount);
        match payment(engine, supp, amount) {
            Ok(()) => {
                acked.push(amount);
                consecutive_failures = 0;
            }
            Err(e) => {
                assert!(
                    e.is_retryable(),
                    "chaos surfaces retryable errors, got {e} (seed {seed})"
                );
                // First retries are immediate (the shed counter must see
                // the degraded window before the scrubber heals it);
                // sustained failure backs off like the harness would.
                consecutive_failures += 1;
                if consecutive_failures > 2 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }
    Err(Traffic { acked, attempted })
}

/// Blocks until the health gauge returns to `Healthy` (bounded).
fn wait_healthy(engine: &ShdEngine, seed: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if engine.kernel().health() == HealthState::Healthy {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "scrubber failed to re-admit within 10s (seed {seed})"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Core durability assertions after reopening the directory.
fn assert_recovered(engine: &ShdEngine, traffic: &Traffic, scenario: &str) {
    let recovered = recovered_amounts(engine);
    for a in &traffic.acked {
        assert!(
            recovered.contains(a),
            "{scenario}: acknowledged payment {a} lost by recovery"
        );
    }
    for r in &recovered {
        assert!(
            traffic.attempted.contains(r),
            "{scenario}: recovery surfaced ghost payment {r}"
        );
    }
    assert_eq!(
        total_ytd(engine),
        recovered.iter().sum::<i64>(),
        "{scenario}: supplier YTD diverged from history (torn payment)"
    );
}

#[test]
fn seeded_fault_plan_degrades_and_recovers_without_losing_acks() {
    for seed in seeds() {
        let dir = wal_dir("seeded", seed);
        let traffic = {
            let engine = open_engine(&dir, DiskFaultPlan::seeded(seed), true);
            // Enough acks to drive every per-class fault clock through
            // every seeded window (they end below op ~300 on their own
            // clock; each acked payment advances both the write clock —
            // its frame — and the sync clock — its group-commit fsync —
            // at least once).
            let traffic = drive_acked(&engine, seed, 320, 100_000)
                .expect("seeded fault windows are finite");
            wait_healthy(&engine, seed);
            let stats = engine.stats();
            // A window whose single op lands on the wrong I/O class
            // injects nothing; but any observed failure must trace back
            // to an injected fault, and vice versa a fault-free run must
            // have acknowledged every attempt.
            if traffic.attempted.len() > traffic.acked.len() {
                assert!(
                    stats.disk_faults >= 1,
                    "failures without injected faults (seed {seed})"
                );
            } else if stats.disk_faults == 0 {
                assert_eq!(
                    traffic.acked.len(),
                    traffic.attempted.len(),
                    "fault-free run acks everything (seed {seed})"
                );
            }
            assert_eq!(stats.health, 0, "gauge agrees with the kernel (seed {seed})");
            traffic
        };
        // Reopen with a clean plan: recovery must honor every ack.
        let engine = open_engine(&dir, DiskFaultPlan::new(), false);
        assert_recovered(&engine, &traffic, "seeded");
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn fsync_fault_then_crash_loses_no_acked_commits() {
    for seed in seeds() {
        let dir = wal_dir("fsync-crash", seed);
        // The window sits on the sync-class clock, so it voids the
        // fsyncs at sync-ops 30..34 (+seed skew) directly; 40 serial
        // payments (one group-commit fsync each) sweep well past it.
        let plan = DiskFaultPlan::new().with(DiskFault {
            kind: DiskFaultKind::FsyncFail,
            at_op: 30 + seed % 7,
            for_ops: 4,
        });
        let mut traffic = {
            let engine = open_engine(&dir, plan, true);
            let traffic =
                drive_acked(&engine, seed, 40, 200_000).expect("fault window is finite");
            let stats = engine.stats();
            assert!(stats.disk_faults >= 1, "fsync fault fired (seed {seed})");
            assert!(
                stats.shed_commits >= 1,
                "degraded WAL sheds commits (seed {seed})"
            );
            // The scrubber must re-admit before the crash half of the
            // scenario, so the kill lands on a healthy WAL.
            wait_healthy(&engine, seed);
            assert!(
                stats.quarantined_segments >= 1 || stats.scrub_passes >= 1,
                "degradation left a trace (seed {seed})"
            );
            traffic
        };
        // Now the crash: reopen with the fault behind us, arm a kill, and
        // die mid-traffic. Recovery after *both* a storage fault and a
        // process crash must still honor every acknowledgement.
        let traffic = {
            let engine = open_engine(&dir, DiskFaultPlan::new(), false);
            let mut rng = HatRng::seeded(seed ^ 0xDEAD);
            let mut amount = 300_000;
            for _ in 0..6 {
                amount += 1;
                traffic.attempted.push(amount);
                payment(&engine, rng.range_u32(1, NSUPP), amount).unwrap();
                traffic.acked.push(amount);
            }
            engine.kernel().durability.wal().expect("fsync mode").arm_kill(KillPoint::AfterFlush);
            let mut crashed = false;
            for _ in 0..64 {
                amount += 1;
                traffic.attempted.push(amount);
                match payment(&engine, rng.range_u32(1, NSUPP), amount) {
                    Ok(()) => traffic.acked.push(amount),
                    Err(e) => {
                        assert!(matches!(e, HatError::EngineStopped), "got {e}");
                        crashed = true;
                        break;
                    }
                }
            }
            assert!(crashed, "armed kill-point must fire (seed {seed})");
            traffic
        };
        let engine = open_engine(&dir, DiskFaultPlan::new(), false);
        assert_recovered(&engine, &traffic, "fsync-crash");
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn persistent_enospc_sheds_writes_but_keeps_serving_reads() {
    for seed in seeds() {
        let dir = wal_dir("enospc", seed);
        let plan = DiskFaultPlan::new().with(DiskFault {
            kind: DiskFaultKind::WriteEnospc,
            at_op: 12,
            for_ops: u64::MAX,
        });
        let engine = open_engine(&dir, plan, true);
        // Drive until the device fills: acks stop, every later attempt
        // is shed with a retryable error, and the loop exits fast (no
        // I/O happens on a shed commit).
        let mut rng = HatRng::seeded(seed);
        let mut acked = Vec::new();
        let mut attempted = Vec::new();
        let mut amount = 400_000i64;
        let mut failures = 0u32;
        for _ in 0..2_000 {
            amount += 1;
            let supp = rng.range_u32(1, NSUPP);
            attempted.push(amount);
            match payment(&engine, supp, amount) {
                Ok(()) => acked.push(amount),
                Err(e) => {
                    assert!(e.is_retryable(), "got {e} (seed {seed})");
                    failures += 1;
                    if failures >= 64 {
                        break;
                    }
                }
            }
        }
        assert!(failures >= 64, "ENOSPC never clears; acks must stop (seed {seed})");
        let traffic = Traffic { acked, attempted };
        assert!(
            engine.kernel().health() != HealthState::Healthy,
            "device-full pins the WAL below Healthy (seed {seed})"
        );
        assert!(
            !engine.kernel().durability.wal().expect("fsync mode").is_crashed(),
            "ENOSPC degrades, never crashes (seed {seed})"
        );
        // Fresh commits are shed with a clean retryable error...
        let err = payment(&engine, 1, 999_999).expect_err("degraded WAL sheds");
        assert!(matches!(err, HatError::Degraded), "got {err}");
        assert!(err.is_retryable());
        // ...while the read side keeps serving: point lookups and a full
        // analytical query both succeed on the degraded engine.
        let mut s = engine.begin();
        assert!(s.lookup_u32(NamedIndex::SupplierPk, 1).unwrap().is_some());
        drop(s);
        engine.query(&count_query(), &QueryOpts::default()).expect("analytics serve while degraded");
        let stats = engine.stats();
        assert!(stats.shed_commits >= 1, "sheds are counted (seed {seed})");
        assert!(stats.health != 0, "gauge shows the degradation (seed {seed})");
        // Clean shutdown while degraded must not wedge or panic.
        let acked = traffic.acked.clone();
        drop(engine);
        // Reopen on pristine I/O: every acked payment is on disk.
        let engine = open_engine(&dir, DiskFaultPlan::new(), false);
        let recovered = recovered_amounts(&engine);
        for a in &acked {
            assert!(recovered.contains(a), "acked {a} lost (seed {seed})");
        }
        assert_recovered(&engine, &traffic, "enospc");
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn wait_path_failures_are_commit_in_doubt_not_clean_aborts() {
    // The two failure surfaces a storage fault exposes must classify
    // differently. A payment whose versions installed before its fsync
    // failed is committed-in-doubt: already visible to readers, durable
    // once the scrubber re-admits the WAL — re-executing it verbatim
    // would double-apply. A payment shed at admission while the engine
    // is degraded aborted cleanly: nothing installed, safe to retry
    // blindly. The error types must carry that distinction.
    for seed in seeds() {
        let dir = wal_dir("in-doubt", seed);
        // An 8-op fsync window: the first failure degrades the flusher
        // and the scrubber's first device probe also fails (consuming
        // the window), so Degraded holds until the *next* probe — long
        // enough for the follow-up payment to observe the admission
        // shed deterministically.
        let plan = DiskFaultPlan::new().with(DiskFault {
            kind: DiskFaultKind::FsyncFail,
            at_op: 3,
            for_ops: 8,
        });
        let config = EngineConfig::builder()
            .durability(DurabilityMode::Fsync(WalConfig {
                segment_bytes: 4096,
                fault_plan: plan,
                max_backlog: 64,
                scrub_interval: Duration::from_millis(50),
                ..WalConfig::new(&dir)
            }))
            .build();
        let engine = ShdEngine::try_new(config).expect("open engine");
        let rows: Vec<_> = (1..=NSUPP).map(supplier_row).collect();
        engine.load(TableId::Supplier, &mut rows.into_iter()).unwrap();
        engine.finish_load().unwrap();

        // Serial payments until the window voids one durability wait.
        let mut acked = Vec::new();
        let mut attempted = Vec::new();
        let mut amount = 800_000i64;
        let in_doubt_amount = loop {
            amount += 1;
            assert!(amount < 800_100, "fault never fired (seed {seed})");
            attempted.push(amount);
            match payment(&engine, 1, amount) {
                Ok(()) => acked.push(amount),
                Err(e) => {
                    assert!(
                        matches!(e, HatError::DurabilityInDoubt),
                        "wait-path failure misclassified as {e} (seed {seed})"
                    );
                    assert!(e.is_commit_in_doubt() && e.is_retryable());
                    break amount;
                }
            }
        };
        // While the window still holds the WAL degraded, a fresh commit
        // is shed at admission: a clean, not-in-doubt abort.
        amount += 1;
        let shed_amount = amount;
        attempted.push(shed_amount);
        let shed = payment(&engine, 1, shed_amount).expect_err("degraded WAL sheds");
        assert!(
            matches!(shed, HatError::Degraded),
            "admission shed misclassified as {shed} (seed {seed})"
        );
        assert!(shed.is_retryable() && !shed.is_commit_in_doubt());
        // The in-doubt payment really did install: it is visible to
        // readers right now, while the shed one is not.
        let live = recovered_amounts(&engine);
        assert!(
            live.contains(&in_doubt_amount),
            "in-doubt payment must stay visible (seed {seed})"
        );
        assert!(
            !live.contains(&shed_amount),
            "shed payment must not install (seed {seed})"
        );
        // And after re-admission + reopen it is durable too — exactly
        // why a contract-following client must not re-execute it.
        wait_healthy(&engine, seed);
        let traffic = Traffic { acked, attempted };
        drop(engine);
        let engine = open_engine(&dir, DiskFaultPlan::new(), false);
        let recovered = recovered_amounts(&engine);
        assert!(
            recovered.contains(&in_doubt_amount),
            "in-doubt payment durable after re-admission (seed {seed})"
        );
        assert!(
            !recovered.contains(&shed_amount),
            "shed payment resurrected by recovery (seed {seed})"
        );
        assert_recovered(&engine, &traffic, "in-doubt");
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn throughput_recovers_after_the_fault_clears() {
    for seed in seeds() {
        let dir = wal_dir("recover", seed);
        let plan = DiskFaultPlan::new().with(DiskFault {
            kind: DiskFaultKind::FsyncFail,
            at_op: 24,
            for_ops: 4,
        });
        let engine = open_engine(&dir, plan, true);
        let traffic =
            drive_acked(&engine, seed, 60, 500_000).expect("fault window is finite");
        wait_healthy(&engine, seed);
        let before = engine.stats();
        assert!(before.disk_faults >= 1, "fault fired (seed {seed})");
        assert!(before.scrub_passes >= 1, "scrubber drove re-admission (seed {seed})");
        assert_eq!(before.health, 0, "back to Healthy (seed {seed})");
        // Post-recovery burst: every commit acknowledges first try — the
        // WAL sheds nothing once re-admitted.
        let mut rng = HatRng::seeded(seed ^ 0xBEEF);
        let mut amount = 600_000;
        for _ in 0..30 {
            amount += 1;
            payment(&engine, rng.range_u32(1, NSUPP), amount)
                .expect("healthy WAL acknowledges first try");
        }
        let after = engine.stats();
        assert_eq!(
            after.shed_commits, before.shed_commits,
            "no shedding after recovery (seed {seed})"
        );
        assert!(traffic.acked.len() >= 60, "target throughput reached (seed {seed})");
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn write_stalls_slow_commits_without_degrading() {
    for seed in seeds() {
        let dir = wal_dir("stall", seed);
        let plan = DiskFaultPlan::new().with(DiskFault {
            kind: DiskFaultKind::WriteStall(Duration::from_millis(2)),
            at_op: 16,
            for_ops: 8,
        });
        let engine = open_engine(&dir, plan, true);
        // Stalls are not errors: every payment eventually acknowledges
        // and the health ladder never moves.
        let mut rng = HatRng::seeded(seed);
        let mut amount = 700_000;
        for _ in 0..30 {
            amount += 1;
            payment(&engine, rng.range_u32(1, NSUPP), amount)
                .expect("stalled writes still acknowledge");
        }
        assert_eq!(engine.kernel().health(), HealthState::Healthy, "seed {seed}");
        let stats = engine.stats();
        assert!(stats.disk_faults >= 1, "stalls are counted as faults (seed {seed})");
        assert_eq!(stats.shed_commits, 0, "no shedding from a slow device (seed {seed})");
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
