//! Harness operating modes: continuation (no reset between points),
//! repeat-averaging, and the wait-die lock policy end-to-end.

mod common;

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::freshness::FreshnessAgg;
use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{BenchmarkConfig, Harness};
use hattrick_repro::engine::{DurabilityMode, EngineConfig, HtapEngine, LockPolicy, QueryOpts, ShdEngine};

fn no_reset_harness() -> Harness {
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    data.load_into(engine.as_ref()).unwrap();
    Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(20),
            measure: Duration::from_millis(100),
            seed: 77,
            reset_between_points: false,
            ..Default::default()
        },
    )
}

#[test]
fn continuation_mode_keeps_data_growing_and_scores_sanely() {
    let h = no_reset_harness();
    let a = h.run_point(2, 1).unwrap();
    let b = h.run_point(2, 1).unwrap();
    assert!(a.committed() > 0 && b.committed() > 0);
    // Without reset the fact table keeps the first point's inserts; the
    // engine stats accumulate across points.
    let stats = h.engine().stats();
    assert!(stats.commits >= a.committed() + b.committed());
    // Freshness scoring must remain non-negative and finite even though
    // the second point's registry starts past the first point's txnnums.
    for s in a.freshness.iter().chain(&b.freshness) {
        assert!(s.is_finite() && *s >= 0.0);
    }
    let agg = FreshnessAgg::from_samples(&b.freshness);
    assert!(agg.p99 < 1.0, "shared engine remains fresh in continuation mode");
}

#[test]
fn repeat_averaging_accumulates_counters() {
    let h = no_reset_harness();
    let m = h.run_point_avg(1, 1, 3).unwrap();
    assert!(m.tps > 0.0);
    assert!(m.committed() > 0);
    assert_eq!(m.freshness.len() as u64, m.queries(), "all samples kept");
    assert!(m.measured_secs > 0.25, "three measurement windows summed");
}

#[test]
fn wait_die_engine_completes_contended_workload() {
    use hattrick_repro::bench::workload::{run_transaction, TxnKind, WorkloadState};
    use hattrick_repro::common::rng::HatRng;

    // Tiny key domain under 4 writers: wait-die must finish every payment
    // (possibly with die-retries) and conserve money exactly like no-wait.
    let data = generate(ScaleFactor(0.0006), 3);
    for policy in [LockPolicy::NoWait, LockPolicy::WaitDie] {
        let engine = Arc::new(ShdEngine::new(
            EngineConfig::builder()
                .lock_policy(policy)
                .durability(DurabilityMode::Off)
                .build(),
        ));
        data.load_into(engine.as_ref()).unwrap();
        let state = WorkloadState::new(&data.profile);
        std::thread::scope(|scope| {
            for client in 0..4u32 {
                let engine = Arc::clone(&engine);
                let data = &data;
                let state = &state;
                scope.spawn(move || {
                    let mut rng = HatRng::derive(55, client as u64);
                    for txnnum in 1..=40 {
                        loop {
                            match run_transaction(
                                engine.as_ref(),
                                &data.profile,
                                state,
                                &mut rng,
                                TxnKind::Payment,
                                client,
                                txnnum,
                            ) {
                                Ok(_) => break,
                                Err(e) if e.is_retryable() => continue,
                                Err(e) => panic!("{policy:?}: {e}"),
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(engine.stats().commits, 160, "{policy:?}");
        // Conservation through the analytical path.
        use hattrick_repro::common::ids::{supplier, TableId};
        use hattrick_repro::query::predicate::Predicate;
        use hattrick_repro::query::spec::{AggExpr, QueryId, QuerySpec};
        let ytd = engine
            .query(&QuerySpec {
                id: QueryId::Q1_1,
                fact: TableId::Supplier,
                fact_filter: Predicate::all(),
                joins: vec![],
                group_by: vec![],
                agg: AggExpr::SumMoney(supplier::YTD),
            }, &QueryOpts::default())
            .unwrap()
            .groups[0]
            .agg;
        assert!(ytd > 0, "{policy:?}: payments moved money");
    }
}
