//! Shared helpers for the integration tests.
#![allow(dead_code)] // each test binary uses a subset of these helpers

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::gen::{generate, GeneratedData, ScaleFactor};
use hattrick_repro::bench::harness::{BenchmarkConfig, Harness};
use hattrick_repro::engine::{
    CowConfig, CowEngine, DualConfig, DualEngine, EngineConfig, HtapEngine, IsoConfig,
    IsoEngine, LearnerConfig, LearnerEngine, LearnerProfile, ReplicationMode, ShdEngine,
};

/// A small but non-trivial dataset (~6k lineorder rows).
pub fn small_data() -> GeneratedData {
    generate(ScaleFactor(0.001), 0xD5)
}

/// Engine constructors for "all four designs" sweeps. Latencies are tuned
/// down so debug-mode tests stay fast.
pub fn all_engines() -> Vec<(&'static str, Arc<dyn HtapEngine>)> {
    vec![
        ("shared", Arc::new(ShdEngine::new(fast_engine_config()))),
        (
            "isolated",
            Arc::new(IsoEngine::new(IsoConfig {
                engine: fast_engine_config(),
                mode: ReplicationMode::RemoteApply,
                link_one_way: Duration::from_micros(20),
                replay_cost: Duration::from_micros(5),
                ..IsoConfig::default()
            })),
        ),
        ("dual", Arc::new(DualEngine::new(DualConfig::default()))),
        (
            "learner",
            Arc::new(LearnerEngine::new(LearnerConfig {
                profile: LearnerProfile::SingleNode,
                apply_cost: Duration::from_micros(5),
                ..LearnerConfig::default()
            })),
        ),
    ]
}

/// All five designs with an explicit MVCC vacuum cadence (`None`
/// disables the background thread). The CoW engine refreshes its
/// analytical snapshot every 5ms so quiesced queries observe the full
/// committed history within a short sleep.
pub fn all_engines_with_vacuum(
    vacuum: Option<Duration>,
) -> Vec<(&'static str, Arc<dyn HtapEngine>)> {
    let cfg = || {
        let mut c = fast_engine_config();
        c.vacuum_interval = vacuum;
        c
    };
    vec![
        ("shared", Arc::new(ShdEngine::new(cfg()))),
        (
            "cow",
            Arc::new(CowEngine::new(CowConfig {
                engine: cfg(),
                snapshot_interval: Duration::from_millis(5),
                ..CowConfig::default()
            })),
        ),
        (
            "isolated",
            Arc::new(IsoEngine::new(IsoConfig {
                engine: cfg(),
                mode: ReplicationMode::RemoteApply,
                link_one_way: Duration::from_micros(20),
                replay_cost: Duration::from_micros(5),
                ..IsoConfig::default()
            })),
        ),
        (
            "dual",
            Arc::new(DualEngine::new(DualConfig {
                vacuum_interval: vacuum,
                ..DualConfig::default()
            })),
        ),
        (
            "learner",
            Arc::new(LearnerEngine::new(LearnerConfig {
                profile: LearnerProfile::SingleNode,
                apply_cost: Duration::from_micros(5),
                vacuum_interval: vacuum,
                ..LearnerConfig::default()
            })),
        ),
    ]
}

/// Engine config with no durability sleep (debug tests).
pub fn fast_engine_config() -> EngineConfig {
    EngineConfig::default().without_durability()
}

/// Loads `data` into `engine` and wraps it in a fast harness.
pub fn fast_harness(engine: Arc<dyn HtapEngine>, data: &GeneratedData) -> Harness {
    data.load_into(engine.as_ref()).expect("load");
    Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(20),
            measure: Duration::from_millis(100),
            seed: 42,
            reset_between_points: true,
            ..Default::default()
        },
    )
}
