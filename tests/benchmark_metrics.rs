//! End-to-end tests of the benchmark's metric pipeline: latency stats,
//! the grid's interpretation helpers, the classifier against engine ground
//! truth, and CSV/report plumbing.

mod common;

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::artifact::{RunArtifact, RunConfig, SCHEMA_VERSION};
use hattrick_repro::bench::freshness::FreshnessAgg;
use hattrick_repro::bench::frontier::{
    build_grid, classify, Frontier, SaturationConfig, ShapeClass,
};
use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{BenchmarkConfig, Harness};
use hattrick_repro::bench::report;
use hattrick_repro::bench::workload::TxnMix;
use hattrick_repro::engine::{HtapEngine, IsoConfig, IsoEngine, ReplicationMode};

#[test]
fn latency_stats_cover_the_full_mix() {
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    let harness = common::fast_harness(engine, &data);
    let m = harness.run_point(3, 1).unwrap();
    // With enough commits, all three transaction types appear.
    if m.committed() > 100 {
        let labels: Vec<String> =
            m.txn_latency().into_iter().map(|(l, _)| l).collect();
        assert!(labels.iter().any(|l| l == "new-order"), "{labels:?}");
        assert!(labels.iter().any(|l| l == "payment"), "{labels:?}");
    }
    // Query labels are SSB names.
    for (label, stats) in m.query_latency() {
        assert!(label.starts_with('Q'), "{label}");
        assert!(stats.count > 0);
    }
}

#[test]
fn custom_mix_restricts_transaction_types() {
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    data.load_into(engine.as_ref()).unwrap();
    let harness = Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(20),
            measure: Duration::from_millis(120),
            seed: 5,
            reset_between_points: true,
            ..Default::default()
        },
    )
    .with_mix(TxnMix { new_order: 0, payment: 100, count_orders: 0 });
    let m = harness.run_point(2, 0).unwrap();
    assert!(m.committed() > 0);
    for (label, _) in m.txn_latency() {
        assert_eq!(label, "payment");
    }
}

#[test]
fn classifier_sees_isolation_in_the_isolated_engine() {
    // The paper's headline claim (§2.3/§6): the frontier shape discovers
    // the design category. A latency-bound isolated engine must not be
    // classified as interference, and its area ratio must exceed the
    // shared engine's CPU-bound one under the same data.
    let data = generate(ScaleFactor(0.002), 9);
    let iso: Arc<dyn HtapEngine> = Arc::new(IsoEngine::new(IsoConfig {
        mode: ReplicationMode::SyncOn,
        link_one_way: Duration::from_micros(200),
        ..IsoConfig::default()
    }));
    data.load_into(iso.as_ref()).unwrap();
    let harness = Harness::new(
        iso,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(50),
            measure: Duration::from_millis(250),
            seed: 2,
            reset_between_points: true,
            ..Default::default()
        },
    );
    let cfg = SaturationConfig { lines: 3, points_per_line: 3, max_clients: 8, epsilon: 0.1 };
    let grid = build_grid(&harness, &cfg);
    let frontier = Frontier::from_grid(&grid);
    let shape = classify(&frontier);
    assert_ne!(
        shape,
        ShapeClass::Interference,
        "isolated engine misclassified (ratio {:.3})",
        frontier.area_ratio()
    );
}

#[test]
fn grid_measurements_carry_freshness_and_latency() {
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    let harness = common::fast_harness(engine, &data);
    let cfg = SaturationConfig { lines: 2, points_per_line: 2, max_clients: 2, epsilon: 0.2 };
    let grid = build_grid(&harness, &cfg);
    // Mixed points must carry freshness samples and latency stats.
    let mixed: Vec<_> = grid
        .measurements
        .iter()
        .filter(|m| m.t_clients > 0 && m.a_clients > 0 && m.queries() > 0)
        .collect();
    assert!(!mixed.is_empty(), "grid has mixed points with queries");
    for m in mixed {
        assert_eq!(m.freshness.len() as u64, m.queries());
        assert!(!m.query_latency().is_empty());
    }
}

#[test]
fn run_artifact_roundtrips_a_real_measurement() {
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    let harness = common::fast_harness(engine, &data);
    let m = harness.run_point(2, 1).unwrap();
    let cfg = harness.config();
    let mut artifact = RunArtifact::new(RunConfig {
        engine: "test".into(),
        scale_factor: data.profile.scale,
        seed: cfg.seed,
        warmup_secs: cfg.warmup.as_secs_f64(),
        measure_secs: cfg.measure.as_secs_f64(),
        sample_every_secs: cfg.sample_every.as_secs_f64(),
        repeats: 1,
    });
    artifact.push_point(m);
    artifact.validate().expect("fresh measurement validates");
    let text = artifact.dump();
    let back = RunArtifact::parse(&text).expect("parses back");
    back.validate().expect("round-tripped artifact validates");
    assert_eq!(back.schema_version, SCHEMA_VERSION);
    let (a, b) = (&artifact.points[0], &back.points[0]);
    assert_eq!(a.committed(), b.committed());
    assert_eq!(a.queries(), b.queries());
    assert_eq!(a.metrics, b.metrics, "window snapshot round-trips exactly");
    assert_eq!(a.metrics_end, b.metrics_end);
    assert_eq!(a.timeseries, b.timeseries);
    assert_eq!(a.freshness, b.freshness);
    // Per-label latency histograms survive the trip.
    assert_eq!(a.txn_latency(), b.txn_latency());
    assert_eq!(a.query_latency(), b.query_latency());
}

#[test]
fn measurement_phase_has_dense_time_series() {
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    let harness = common::fast_harness(engine, &data);
    let m = harness.run_point(2, 1).unwrap();
    use hattrick_repro::bench::harness::SamplePhase;
    let measure = m
        .timeseries
        .iter()
        .filter(|s| s.phase == SamplePhase::Measure)
        .count();
    assert!(measure >= 5, "expected >= 5 measurement samples, got {measure}");
}

#[test]
fn summary_report_is_complete() {
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    let harness = common::fast_harness(engine, &data);
    let cfg = SaturationConfig { lines: 2, points_per_line: 2, max_clients: 2, epsilon: 0.2 };
    let grid = build_grid(&harness, &cfg);
    let frontier = Frontier::from_grid(&grid);
    let freshness: Vec<f64> = grid
        .measurements
        .iter()
        .flat_map(|m| m.freshness.iter().copied())
        .collect();
    let agg = FreshnessAgg::from_samples(&freshness);
    let text = report::summary("test-engine", &frontier, &agg);
    assert!(text.contains("X_T"));
    assert!(text.contains("shape:"));
    let grid_csv = report::grid_csv(&grid);
    assert!(grid_csv.contains("fixed-T"));
    assert!(grid_csv.contains("fixed-A"));
    let plot = report::frontier_ascii("test-engine", &frontier);
    assert!(plot.contains("frontier"));
}
