//! End-to-end saturation-method pipeline (§3.3): build a grid on a real
//! engine, extract the frontier, and check the structural guarantees the
//! paper's methodology relies on.

mod common;

use hattrick_repro::bench::frontier::{
    build_grid, find_saturation, sample_random, FixedKind, Frontier, SaturationConfig,
};
use hattrick_repro::common::rng::HatRng;

fn tiny_cfg() -> SaturationConfig {
    SaturationConfig { lines: 2, points_per_line: 3, max_clients: 4, epsilon: 0.15 }
}

#[test]
fn grid_and_frontier_structure() {
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    let harness = common::fast_harness(engine, &data);
    let cfg = tiny_cfg();
    let grid = build_grid(&harness, &cfg);

    assert!(grid.tau_max >= 1 && grid.tau_max <= cfg.max_clients);
    assert!(grid.alpha_max >= 1);
    assert!(grid.x_t > 0.0, "pure T throughput");
    assert!(grid.x_a > 0.0, "pure A throughput");
    assert!(!grid.fixed_t.is_empty() && !grid.fixed_a.is_empty());
    for line in grid.fixed_t.iter().chain(&grid.fixed_a) {
        assert!(!line.points.is_empty());
    }

    let frontier = Frontier::from_grid(&grid);
    assert!(frontier.points.len() >= 2, "axis extremes always present");
    // Bounded by the bounding box (§3.1: "always bounded by X_T and X_A").
    for p in &frontier.points {
        assert!(p.t <= frontier.x_t + 1e-9);
        assert!(p.a <= frontier.x_a + 1e-9);
    }
    // Pareto order: ascending t, descending a, no dominated points.
    for w in frontier.points.windows(2) {
        assert!(w[0].t <= w[1].t);
        assert!(w[0].a >= w[1].a);
    }
    // The extremes reach the axes.
    assert_eq!(frontier.points.first().unwrap().t, 0.0);
    assert_eq!(frontier.points.last().unwrap().a, 0.0);
    // Area ratio lies in (0, 1].
    let r = frontier.area_ratio();
    assert!(r > 0.0 && r <= 1.0, "area ratio {r}");
}

#[test]
fn saturation_search_terminates_and_is_positive() {
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    let harness = common::fast_harness(engine, &data);
    let cfg = tiny_cfg();
    let (tau, x_t, ms) = find_saturation(&harness, FixedKind::FixedT, &cfg);
    assert!(tau >= 1 && tau <= cfg.max_clients);
    assert!(x_t > 0.0);
    assert!(!ms.is_empty());
    // Client counts explored are powers of two.
    for m in &ms {
        assert!(m.t_clients.is_power_of_two());
        assert_eq!(m.a_clients, 0);
    }
}

#[test]
fn sampling_method_points_fall_inside_saturation_box() {
    // Figure 1's two construction methods must agree on the bound: random
    // mixes cannot (materially) exceed the saturation-method extremes.
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    let harness = common::fast_harness(engine, &data);
    let cfg = tiny_cfg();
    let grid = build_grid(&harness, &cfg);
    let mut rng = HatRng::seeded(2024);
    let samples = sample_random(&harness, 4, 4, &mut rng);
    for m in &samples {
        // 25% tolerance: short measurement windows are noisy.
        assert!(
            m.tps <= grid.x_t * 1.25,
            "sampled tps {} above X_T {}",
            m.tps,
            grid.x_t
        );
        assert!(
            m.qps <= grid.x_a * 1.25 + 5.0,
            "sampled qps {} above X_A {}",
            m.qps,
            grid.x_a
        );
    }
}

#[test]
fn frontier_csv_roundtrip_has_all_points() {
    let data = common::small_data();
    let (_, engine) = common::all_engines().remove(0);
    let harness = common::fast_harness(engine, &data);
    let grid = build_grid(&harness, &tiny_cfg());
    let frontier = Frontier::from_grid(&grid);
    let csv = hattrick_repro::bench::report::frontier_csv(&frontier);
    assert_eq!(csv.lines().count(), frontier.points.len() + 1);
    let grid_csv = hattrick_repro::bench::report::grid_csv(&grid);
    let expected_rows: usize = grid
        .fixed_t
        .iter()
        .chain(&grid.fixed_a)
        .map(|l| l.points.len())
        .sum();
    assert_eq!(grid_csv.lines().count(), expected_rows + 1);
}
