//! Property tests for the telemetry layer: histogram merge algebra,
//! quantile error bounds, and snapshot-diff monotonicity under real
//! concurrent traffic. These pin down the guarantees the harness and
//! the run artifact rely on (ISSUE 4, satellite 4).

use std::sync::Arc;

use hattrick_repro::common::rng::HatRng;
use hattrick_repro::common::telemetry::{
    bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot,
};

/// Deterministic pseudo-random value sets with a heavy-tailed shape
/// resembling latency samples (mixed exact-range and octave-range values).
fn sample_values(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = HatRng::seeded(seed);
    (0..n)
        .map(|_| {
            if rng.chance(0.3) {
                rng.range_u64(0, 32) // exact buckets
            } else {
                let exp = rng.range_u32(5, 40);
                rng.range_u64(1u64 << exp, (1u64 << exp) + (1u64 << exp))
            }
        })
        .collect()
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    let a = HistogramSnapshot::from_values(&sample_values(1, 500));
    let b = HistogramSnapshot::from_values(&sample_values(2, 300));
    let c = HistogramSnapshot::from_values(&sample_values(3, 700));
    // (a ∪ b) ∪ c == a ∪ (b ∪ c)
    assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    // a ∪ b == b ∪ a
    assert_eq!(a.merge(&b), b.merge(&a));
    // Identity: merging an empty snapshot changes nothing.
    let empty = HistogramSnapshot::default();
    assert_eq!(a.merge(&empty), a);
    assert_eq!(empty.merge(&a), a);
}

#[test]
fn histogram_merge_is_order_independent_across_partitions() {
    // Splitting one value stream into arbitrary partitions and merging
    // them back in any order must reproduce the single-histogram state.
    let values = sample_values(7, 1000);
    let whole = HistogramSnapshot::from_values(&values);
    for parts in [2usize, 3, 7] {
        let mut chunks: Vec<HistogramSnapshot> = values
            .chunks(values.len().div_ceil(parts))
            .map(HistogramSnapshot::from_values)
            .collect();
        // Forward order.
        let forward = chunks
            .iter()
            .fold(HistogramSnapshot::default(), |acc, c| acc.merge(c));
        assert_eq!(forward, whole, "forward merge of {parts} partitions");
        // Reversed order.
        chunks.reverse();
        let backward = chunks
            .iter()
            .fold(HistogramSnapshot::default(), |acc, c| acc.merge(c));
        assert_eq!(backward, whole, "reverse merge of {parts} partitions");
    }
}

#[test]
fn quantile_error_is_at_most_one_bucket_width() {
    for seed in [11u64, 12, 13] {
        let mut values = sample_values(seed, 800);
        values.sort_unstable();
        let snap = HistogramSnapshot::from_values(&values);
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize)
                .clamp(1, values.len());
            let exact = values[rank - 1];
            let est = snap.quantile(q);
            // The estimate is the upper bound of the exact value's bucket
            // (clamped to the observed max): never below the true value,
            // never above it by more than one bucket width.
            let width = bucket_upper(bucket_index(exact)) - bucket_lower(bucket_index(exact));
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            assert!(
                est <= exact + width,
                "q={q}: est {est} exceeds exact {exact} by more than bucket width {width}"
            );
            // Relative bucket width bound: ≤ 6.25% for values ≥ 32.
            if exact >= 32 {
                assert!(
                    (est - exact) as f64 <= exact as f64 * 0.0625 + 1.0,
                    "q={q}: relative error too large (est {est}, exact {exact})"
                );
            }
        }
    }
}

#[test]
fn histogram_preserves_exact_count_sum_min_max() {
    let values = sample_values(21, 400);
    let snap = HistogramSnapshot::from_values(&values);
    assert_eq!(snap.count, values.len() as u64);
    assert_eq!(snap.sum, values.iter().sum::<u64>());
    assert_eq!(snap.min, *values.iter().min().unwrap());
    assert_eq!(snap.max, *values.iter().max().unwrap());
    let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, snap.count, "buckets account for every value");
}

#[test]
fn snapshot_diff_is_monotone_under_concurrent_traffic() {
    // Hammer a registry from several threads while the main thread takes
    // successive snapshots. Counters and histogram counts must never
    // decrease between snapshots, and each window diff must be
    // non-negative and sum back to the cumulative total.
    let reg = Arc::new(MetricsRegistry::new());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let snaps: Vec<MetricsSnapshot> = std::thread::scope(|scope| {
        for t in 0..4u64 {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let counter = reg.counter("test.ops");
                let hist = reg.histogram("test.latency");
                let gauge = reg.gauge("test.depth");
                let mut rng = HatRng::derive(0xD1FF, t);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    counter.inc();
                    hist.record(rng.range_u64(1, 1 << 20));
                    gauge.set_max(rng.range_u64(0, 1 << 10));
                }
            });
        }
        let mut snaps = Vec::new();
        for _ in 0..20 {
            snaps.push(reg.snapshot());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        snaps
    });
    let mut windows = MetricsSnapshot::new();
    for pair in snaps.windows(2) {
        let (s1, s2) = (&pair[0], &pair[1]);
        assert!(s2.counter("test.ops") >= s1.counter("test.ops"));
        let (h1, h2) = (s1.histogram("test.latency"), s2.histogram("test.latency"));
        let c1 = h1.map_or(0, |h| h.count);
        let c2 = h2.map_or(0, |h| h.count);
        assert!(c2 >= c1, "histogram count regressed: {c2} < {c1}");
        let d = s2.diff(s1);
        assert_eq!(
            d.counter("test.ops"),
            s2.counter("test.ops") - s1.counter("test.ops")
        );
        if let Some(h) = d.histogram("test.latency") {
            assert_eq!(h.count, c2 - c1, "window histogram count is the delta");
            for &(_, n) in &h.buckets {
                assert!(n > 0, "diff emits only positive bucket deltas");
            }
        }
        windows = windows.merge(&d);
    }
    // Re-merging every window plus the first snapshot reproduces the
    // final cumulative counter exactly.
    let last = snaps.last().unwrap();
    let first = snaps.first().unwrap();
    assert_eq!(
        first.counter("test.ops") + windows.counter("test.ops"),
        last.counter("test.ops")
    );
    assert!(last.counter("test.ops") > 0, "threads made progress");
}

#[test]
fn registry_handles_are_shared_and_lock_free_to_read() {
    // Two lookups of the same name return the same underlying atomic.
    let reg = MetricsRegistry::new();
    let a = reg.counter("x");
    let b = reg.counter("x");
    a.add(3);
    b.inc();
    assert_eq!(a.get(), 4);
    assert_eq!(reg.snapshot().counter("x"), 4);
    // Histograms: concurrent recording through clones of the handle.
    let h = reg.histogram("y");
    let h2 = reg.histogram("y");
    h.record(10);
    h2.record(20);
    let snap = reg.snapshot().histogram("y").cloned().unwrap();
    assert_eq!(snap.count, 2);
    assert_eq!(snap.sum, 30);
}

#[test]
fn live_histogram_matches_snapshot_builder() {
    // Recording through the live atomic histogram and building from the
    // same values must agree exactly.
    let values = sample_values(31, 250);
    let live = Histogram::new();
    for &v in &values {
        live.record(v);
    }
    assert_eq!(live.snapshot(), HistogramSnapshot::from_values(&values));
    assert_eq!(live.count(), values.len() as u64);
}
