//! Concurrency invariants, checked end-to-end on every engine: money
//! conservation under concurrent Payments, payment-count accounting,
//! order integrity under concurrent New Orders, and reset round-trips.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hattrick_repro::bench::workload::{run_transaction, TxnKind, TxnMix, WorkloadState};
use hattrick_repro::common::ids::{customer, lineorder, supplier, TableId};
use hattrick_repro::common::rng::HatRng;
use hattrick_repro::common::Money;
use hattrick_repro::engine::{HtapEngine, QueryOpts};
use hattrick_repro::query::predicate::Predicate;
use hattrick_repro::query::spec::{AggExpr, GroupKey, QueryId, QuerySpec};

/// Global sum of a money column via the analytical path.
fn sum_money(engine: &dyn HtapEngine, table: TableId, col: usize) -> i64 {
    let spec = QuerySpec {
        id: QueryId::Q1_1,
        fact: table,
        fact_filter: Predicate::all(),
        joins: vec![],
        group_by: vec![],
        agg: AggExpr::SumMoney(col),
    };
    engine.query(&spec, &QueryOpts::default()).unwrap().groups[0].agg
}

/// Global count(*) via the analytical path.
fn count_rows(engine: &dyn HtapEngine, table: TableId) -> i64 {
    let spec = QuerySpec {
        id: QueryId::Q1_1,
        fact: table,
        fact_filter: Predicate::all(),
        joins: vec![],
        group_by: vec![],
        agg: AggExpr::CountRows,
    };
    engine.query(&spec, &QueryOpts::default()).unwrap().groups[0].agg
}

#[test]
fn concurrent_payments_conserve_money_on_every_engine() {
    let data = common::small_data();
    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        let state = WorkloadState::new(&data.profile);
        let committed = AtomicU64::new(0);
        let history_before = count_rows(engine.as_ref(), TableId::History);

        std::thread::scope(|scope| {
            for client in 0..4u32 {
                let engine = Arc::clone(&engine);
                let profile = &data.profile;
                let state = &state;
                let committed = &committed;
                scope.spawn(move || {
                    let mut rng = HatRng::derive(1234, client as u64);
                    let mut txnnum = 0;
                    for _ in 0..60 {
                        txnnum += 1;
                        loop {
                            match run_transaction(
                                engine.as_ref(),
                                profile,
                                state,
                                &mut rng,
                                TxnKind::Payment,
                                client,
                                txnnum,
                            ) {
                                Ok(_) => {
                                    committed.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(e) if e.is_retryable() => continue,
                                Err(e) => panic!("{name}: {e}"),
                            }
                        }
                    }
                });
            }
        });

        let committed = committed.load(Ordering::Relaxed);
        assert_eq!(committed, 240, "{name}: every payment must commit");

        // (1) Σ S_YTD == Σ new H_AMOUNT: the two sides of each payment.
        let ytd = sum_money(engine.as_ref(), TableId::Supplier, supplier::YTD);
        let initial_hist = {
            // Initial HISTORY amounts (from the load) must be excluded.
            let all = sum_money(engine.as_ref(), TableId::History, 2);
            let loaded: i64 =
                data.history.iter().map(|r| r[2].as_money().unwrap().cents()).sum();
            all - loaded
        };
        assert_eq!(ytd, initial_hist, "{name}: supplier YTD vs new history");
        assert!(ytd > 0, "{name}: payments actually moved money");

        // (2) one HISTORY row per committed payment.
        let history_after = count_rows(engine.as_ref(), TableId::History);
        assert_eq!(
            (history_after - history_before) as u64,
            committed,
            "{name}: history rows"
        );

        // (3) Σ C_PAYMENTCNT == committed payments. PAYMENTCNT is u32; sum
        // via a grouped count over the analytical path is awkward, so use a
        // count of payment increments: total paymentcnt across customers.
        let spec = QuerySpec {
            id: QueryId::Q1_1,
            fact: TableId::Customer,
            fact_filter: Predicate::all(),
            joins: vec![],
            group_by: vec![GroupKey::FactU32(customer::PAYMENTCNT)],
            agg: AggExpr::CountRows,
        };
        let out = engine.query(&spec, &QueryOpts::default()).unwrap();
        let total_paycnt: i64 = out
            .groups
            .iter()
            .map(|g| {
                let cnt: i64 = g.key[0].to_string().parse().unwrap();
                cnt * g.agg
            })
            .sum();
        assert_eq!(total_paycnt as u64, committed, "{name}: paymentcnt total");
    }
}

#[test]
fn concurrent_mixed_workload_preserves_order_integrity() {
    let data = common::small_data();
    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        let state = WorkloadState::new(&data.profile);
        let mix = TxnMix::default();

        std::thread::scope(|scope| {
            for client in 0..4u32 {
                let engine = Arc::clone(&engine);
                let profile = &data.profile;
                let state = &state;
                let mix = &mix;
                scope.spawn(move || {
                    let mut rng = HatRng::derive(77, client as u64);
                    let mut txnnum = 0;
                    for _ in 0..50 {
                        txnnum += 1;
                        loop {
                            let kind = mix.draw(&mut rng);
                            match run_transaction(
                                engine.as_ref(),
                                profile,
                                state,
                                &mut rng,
                                kind,
                                client,
                                txnnum,
                            ) {
                                Ok(_) => break,
                                Err(e) if e.is_retryable() => continue,
                                Err(e) => panic!("{name}: {e}"),
                            }
                        }
                    }
                });
            }
        });

        // Per-order integrity via a grouped count: every new order has
        // 1..=7 lines and line numbers are unique per order (the count of
        // (orderkey) groups with > 7 rows must be zero).
        let spec = QuerySpec {
            id: QueryId::Q1_1,
            fact: TableId::Lineorder,
            fact_filter: Predicate::all(),
            joins: vec![],
            group_by: vec![GroupKey::FactU32(lineorder::LINENUMBER)],
            agg: AggExpr::CountRows,
        };
        let out = engine.query(&spec, &QueryOpts::default()).unwrap();
        for g in &out.groups {
            let line_no: u32 = g.key[0].to_string().parse().unwrap();
            assert!(
                (1..=7).contains(&line_no),
                "{name}: line number {line_no} out of range"
            );
        }
    }
}

#[test]
fn reset_roundtrips_to_identical_analytics() {
    let data = common::small_data();
    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        let before = {
            let out = engine
                .query(&hattrick_repro::query::ssb::query(QueryId::Q2_1), &QueryOpts::default())
                .unwrap();
            (out.groups.clone(), out.matched_rows)
        };
        // Mutate heavily.
        let state = WorkloadState::new(&data.profile);
        let mut rng = HatRng::seeded(5);
        for i in 1..=40 {
            let kind = TxnMix::default().draw(&mut rng);
            let _ = run_transaction(
                engine.as_ref(),
                &data.profile,
                &state,
                &mut rng,
                kind,
                0,
                i,
            );
        }
        engine.reset().unwrap();
        let out = engine
            .query(&hattrick_repro::query::ssb::query(QueryId::Q2_1), &QueryOpts::default())
            .unwrap();
        assert_eq!(out.groups, before.0, "{name}: groups after reset");
        assert_eq!(out.matched_rows, before.1, "{name}: rows after reset");
        // Freshness table is back to zero for every client.
        assert!(out.freshness.iter().all(|&(_, txn)| txn == 0), "{name}");
    }
}

#[test]
fn new_order_totals_are_consistent_per_order() {
    // ORDTOTALPRICE carried on each line must be >= its line's
    // EXTENDEDPRICE and equal across all lines of the final order state.
    let data = common::small_data();
    let (name, engine) = common::all_engines().remove(0);
    data.load_into(engine.as_ref()).unwrap();
    let state = WorkloadState::new(&data.profile);
    let mut rng = HatRng::seeded(9);
    for i in 1..=20 {
        assert!(run_transaction(
            engine.as_ref(),
            &data.profile,
            &state,
            &mut rng,
            TxnKind::NewOrder,
            0,
            i,
        )
        .unwrap().is_acked());
    }
    // Scan appended orders through the analytical path: sum extended per
    // order equals max ordtotal per order. Verify via a direct spec pair.
    let sum_spec = QuerySpec {
        id: QueryId::Q1_1,
        fact: TableId::Lineorder,
        fact_filter: Predicate::all(),
        joins: vec![],
        group_by: vec![],
        agg: AggExpr::SumMoney(lineorder::EXTENDEDPRICE),
    };
    let loaded_sum: i64 = data
        .lineorder
        .iter()
        .map(|r| r[lineorder::EXTENDEDPRICE].as_money().unwrap().cents())
        .sum();
    let total = engine.query(&sum_spec, &QueryOpts::default()).unwrap().groups[0].agg;
    assert!(total > loaded_sum, "{name}: new lines added value");
    let _ = Money::ZERO;
}
