//! Cross-shard correctness suite for the sharded transactional kernel.
//!
//! The kernel hash-splits commits across N shards: single-shard
//! transactions commit entirely shard-locally, cross-shard transactions
//! pay a 2PC round over the per-shard oracles and install at one common
//! commit timestamp. These tests pin the contract down:
//!
//! 1. **Shard locality** — a workload whose every transaction writes one
//!    shard never takes the cross-shard round (`txn.xshard_commits` and
//!    every per-shard `txn.shardN.xshard_commits` stay 0).
//! 2. **Atomicity across shards** — money moved by cross-shard payments
//!    is conserved, and no snapshot anywhere observes half of a
//!    cross-shard install.
//! 3. **Query equivalence** — all 13 SSB queries answer byte-identically
//!    at shards 1, 2, and 8 over the same data.
//! 4. **Crash recovery** — a cross-shard commit killed mid-durability
//!    resolves the same way (atomically present or atomically absent) on
//!    every replay of the per-shard WAL merge.
//!
//! A `#[ignore]`d release-mode smoke asserts the scaling target the
//! redesign exists for: shard-local throughput at shards=4 must beat
//! shards=1 by at least 1.8x (CI runs it with `--release --ignored`).

mod common;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hattrick_repro::common::ids::{history, supplier, TableId};
use hattrick_repro::common::rng::HatRng;
use hattrick_repro::common::value::{row_from, row_with};
use hattrick_repro::common::{Money, Value};
use hattrick_repro::engine::{
    DurabilityMode, EngineConfig, HtapEngine, KillPoint, NamedIndex, QueryOpts,
    ShdEngine, WalConfig,
};
use hattrick_repro::query::spec::QueryId;
use hattrick_repro::query::ssb;

const NSUPP: u32 = 16;

fn sharded_config(shards: u32) -> EngineConfig {
    EngineConfig::builder()
        .shards(shards)
        .durability(DurabilityMode::Off)
        .build()
}

fn supplier_row(k: u32) -> hattrick_repro::common::Row {
    row_from([
        Value::U32(k),
        Value::from(format!("Supplier#{k:09}")),
        Value::from("addr"),
        Value::from("CITY0"),
        Value::from("CHINA"),
        Value::from("ASIA"),
        Value::from("phone"),
        Value::Money(Money::ZERO),
    ])
}

fn load_suppliers(engine: &ShdEngine, n: u32) {
    let rows: Vec<_> = (1..=n).map(supplier_row).collect();
    engine.load(TableId::Supplier, &mut rows.into_iter()).unwrap();
    engine.finish_load().unwrap();
}

/// One payment: supplier `suppkey` YTD += amount plus a HISTORY row
/// carrying the (unique) amount. The HISTORY insert routes by its first
/// column — the amount — so the caller steers which shard the insert
/// lands on, and thereby whether the payment is cross-shard.
fn payment(engine: &ShdEngine, suppkey: u32, amount_cents: i64) -> bool {
    let mut s = engine.begin();
    let (rid, row) = s
        .lookup_u32(NamedIndex::SupplierPk, suppkey)
        .unwrap()
        .expect("supplier exists");
    let ytd = row[supplier::YTD].as_money().expect("typed");
    // Write locks are taken eagerly, so a concurrent writer surfaces
    // here as a retryable abort rather than at commit.
    if let Err(e) = s.update(
        TableId::Supplier,
        rid,
        row_with(&row, supplier::YTD, Value::Money(ytd + Money::from_cents(amount_cents))),
    ) {
        assert!(e.is_retryable(), "unexpected update error: {e}");
        return false;
    }
    s.insert(
        TableId::History,
        row_from([
            Value::U64(amount_cents as u64),
            Value::U32(suppkey),
            Value::Money(Money::from_cents(amount_cents)),
        ]),
    )
    .unwrap();
    match s.commit() {
        Ok(receipt) => {
            assert!(receipt.is_acked(), "durability off: commits always ack");
            true
        }
        Err(e) => {
            assert!(e.is_retryable(), "unexpected commit error: {e}");
            false
        }
    }
}

/// Sorted HISTORY amounts visible at the latest snapshot.
fn history_amounts(engine: &ShdEngine) -> Vec<i64> {
    let k = engine.kernel();
    let ts = k.oracle.read_ts();
    let mut amounts = Vec::new();
    k.db.store(TableId::History).scan(ts, |_, row| {
        amounts.push(row[history::AMOUNT].as_money().expect("typed").cents());
    });
    amounts.sort_unstable();
    amounts
}

/// Per-supplier YTD cents in rid order (the recovery fingerprint).
fn ytd_vector(engine: &ShdEngine) -> Vec<i64> {
    let k = engine.kernel();
    let ts = k.oracle.read_ts();
    let mut out = Vec::new();
    k.db.store(TableId::Supplier).scan(ts, |_, row| {
        out.push(row[supplier::YTD].as_money().expect("typed").cents());
    });
    out
}

#[test]
fn shard_local_transactions_never_pay_the_cross_shard_round() {
    let engine = ShdEngine::new(sharded_config(4));
    load_suppliers(&engine, NSUPP);
    // Every transaction writes exactly one row: a one-element write set
    // is one participant by construction, whatever shard it hashes to.
    for round in 0..20i64 {
        for k in 1..=NSUPP {
            let mut s = engine.begin();
            let (rid, row) =
                s.lookup_u32(NamedIndex::SupplierPk, k).unwrap().expect("supplier");
            let ytd = row[supplier::YTD].as_money().unwrap();
            s.update(
                TableId::Supplier,
                rid,
                row_with(&row, supplier::YTD, Value::Money(ytd + Money::from_cents(round))),
            )
            .unwrap();
            assert!(s.commit().unwrap().is_acked());
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.commits, 20 * NSUPP as u64);
    assert_eq!(stats.xshard_commits, 0, "shard-local workload never crosses shards");
    let snap = engine.kernel().metrics();
    let mut shard_commits = 0;
    for shard in 0..4 {
        assert_eq!(
            snap.counter(&format!("txn.shard{shard}.xshard_commits")),
            0,
            "shard {shard} saw a phantom cross-shard round"
        );
        shard_commits += snap.counter(&format!("txn.shard{shard}.commits"));
    }
    assert_eq!(shard_commits, stats.commits, "every commit lands on exactly one shard");
    // The hash router actually spread the load: no shard owns everything.
    for shard in 0..4 {
        let own = snap.counter(&format!("txn.shard{shard}.commits"));
        assert!(own < stats.commits, "shard {shard} absorbed the whole workload");
    }
}

#[test]
fn cross_shard_payments_conserve_money() {
    let engine = Arc::new(ShdEngine::new(sharded_config(4)));
    load_suppliers(&engine, NSUPP);
    let next_amount = AtomicU64::new(1);
    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let engine = Arc::clone(&engine);
            let next_amount = &next_amount;
            scope.spawn(move || {
                let mut rng = HatRng::derive(0x5AD, client);
                for _ in 0..60 {
                    // A fresh amount per attempt: conflicts abort cleanly,
                    // so a retried amount would double-count otherwise.
                    loop {
                        let amount = next_amount.fetch_add(1, Ordering::Relaxed) as i64;
                        if payment(engine.as_ref(), rng.range_u32(1, NSUPP), amount) {
                            break;
                        }
                    }
                }
            });
        }
    });
    let amounts = history_amounts(&engine);
    assert_eq!(amounts.len(), 240, "every acked payment has its history row");
    assert_eq!(
        ytd_vector(&engine).iter().sum::<i64>(),
        amounts.iter().sum::<i64>(),
        "supplier YTD diverged from history: a cross-shard payment tore"
    );
    // The amount-steered inserts really did cross shards: with 4 shards
    // and 240 payments the odds of every insert co-homing with its
    // supplier row are nil.
    assert!(
        engine.stats().xshard_commits > 0,
        "workload never exercised the 2PC round"
    );
}

#[test]
fn no_partial_cross_shard_install_at_any_snapshot() {
    let engine = Arc::new(ShdEngine::new(sharded_config(4)));
    load_suppliers(&engine, NSUPP);
    // Two suppliers whose rows commit on different shards.
    let router = *engine.kernel().router();
    let (a, b) = {
        let mut found = (1u32, 2u32);
        'outer: for a in 1..=NSUPP {
            for b in 1..=NSUPP {
                if a != b
                    && router.route(TableId::Supplier, (a - 1) as u64)
                        != router.route(TableId::Supplier, (b - 1) as u64)
                {
                    found = (a, b);
                    break 'outer;
                }
            }
        }
        found
    };
    let rid_a = (a - 1) as u64;
    let rid_b = (b - 1) as u64;
    assert_ne!(
        router.route(TableId::Supplier, rid_a),
        router.route(TableId::Supplier, rid_b),
        "picked a genuinely cross-shard pair"
    );

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: transfer money from A to B and back, both legs in one
        // transaction. Every commit is cross-shard; the invariant is that
        // YTD(a) + YTD(b) == 0 at every instant.
        let writer_engine = Arc::clone(&engine);
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut moved = 0i64;
            while !stop_ref.load(Ordering::Relaxed) {
                let delta = if moved % 2 == 0 { 7 } else { -7 };
                moved += 1;
                let mut s = writer_engine.begin();
                let (rid, row) =
                    s.lookup_u32(NamedIndex::SupplierPk, a).unwrap().expect("a");
                let ytd = row[supplier::YTD].as_money().unwrap();
                s.update(
                    TableId::Supplier,
                    rid,
                    row_with(&row, supplier::YTD, Value::Money(ytd + Money::from_cents(delta))),
                )
                .unwrap();
                let (rid, row) =
                    s.lookup_u32(NamedIndex::SupplierPk, b).unwrap().expect("b");
                let ytd = row[supplier::YTD].as_money().unwrap();
                s.update(
                    TableId::Supplier,
                    rid,
                    row_with(&row, supplier::YTD, Value::Money(ytd - Money::from_cents(delta))),
                )
                .unwrap();
                match s.commit() {
                    Ok(receipt) => assert!(receipt.is_acked()),
                    Err(e) => assert!(e.is_retryable(), "{e}"),
                }
            }
        });
        // Readers: one snapshot each, both legs read inside it. A torn
        // install would show a nonzero pair sum.
        for _ in 0..2 {
            let reader_engine = Arc::clone(&engine);
            let stop_ref = &stop;
            scope.spawn(move || {
                let mut observed = 0u32;
                while !stop_ref.load(Ordering::Relaxed) {
                    let mut s = reader_engine.begin();
                    let (_, row_a) =
                        s.lookup_u32(NamedIndex::SupplierPk, a).unwrap().expect("a");
                    let (_, row_b) =
                        s.lookup_u32(NamedIndex::SupplierPk, b).unwrap().expect("b");
                    let sum = row_a[supplier::YTD].as_money().unwrap().cents()
                        + row_b[supplier::YTD].as_money().unwrap().cents();
                    assert_eq!(sum, 0, "snapshot observed half a cross-shard install");
                    s.abort();
                    observed += 1;
                }
                assert!(observed > 0);
            });
        }
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
    });
    assert!(engine.stats().xshard_commits > 0, "transfers exercised the 2PC round");
}

#[test]
fn ssb_answers_are_byte_identical_across_shard_counts() {
    let data = common::small_data();
    let mut baseline: Option<Vec<String>> = None;
    for shards in [1u32, 2, 8] {
        let engine = ShdEngine::new(sharded_config(shards));
        data.load_into(&engine).unwrap();
        let answers: Vec<String> = QueryId::ALL
            .iter()
            .map(|&id| {
                let out = engine.query(&ssb::query(id), &QueryOpts::default()).unwrap();
                format!("{:?}", out.groups)
            })
            .collect();
        match &baseline {
            None => baseline = Some(answers),
            Some(base) => {
                for (i, (want, got)) in base.iter().zip(&answers).enumerate() {
                    assert_eq!(
                        want,
                        got,
                        "{} diverged at shards={shards}",
                        QueryId::ALL[i].label()
                    );
                }
            }
        }
    }
}

/// WAL directory under `target/` (predictable path for CI artifact
/// collection, like the disk-chaos suites). Leftovers are removed.
fn wal_dir(seed: u64) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("shard-chaos")
        .join(format!("kill-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_sharded_config(dir: &Path) -> EngineConfig {
    EngineConfig::builder()
        .shards(4)
        .durability(DurabilityMode::Fsync(WalConfig {
            segment_bytes: 4096,
            ..WalConfig::new(dir)
        }))
        .build()
}

#[test]
fn in_doubt_cross_shard_commit_resolves_identically_on_every_replay() {
    for seed in [0x5Au64, 0xB7, 0x1C3] {
        let dir = wal_dir(seed);
        let kill_amount;
        {
            let engine =
                ShdEngine::try_new(durable_sharded_config(&dir)).expect("open engine");
            load_suppliers(&engine, NSUPP);
            // Some acked cross-shard traffic first, so recovery has both
            // durable commits to keep and (after the kill) one to drop.
            let mut rng = HatRng::seeded(seed);
            let mut amount = 1_000i64;
            for _ in 0..12 {
                amount += 1;
                while !payment(&engine, rng.range_u32(1, NSUPP), amount) {}
            }
            // Steer the next payment cross-shard, then kill the
            // coordinator's WAL before its record can flush: the commit
            // installs in memory but its single 2PC record (participant
            // set and all) never becomes durable.
            let suppkey = rng.range_u32(1, NSUPP);
            let router = *engine.kernel().router();
            let supp_shard = router.route(TableId::Supplier, (suppkey - 1) as u64);
            amount += 1;
            while router.route(TableId::History, amount as u64) == supp_shard {
                amount += 1;
            }
            kill_amount = amount;
            let hist_shard = router.route(TableId::History, amount as u64);
            let coordinator = supp_shard.min(hist_shard);
            engine
                .kernel()
                .durability
                .wal_for(coordinator)
                .expect("fsync mode")
                .arm_kill(KillPoint::BeforeFlush);
            // The commit is unresolved from the client's view: either a
            // terminal error or an in-doubt receipt, never a clean ack.
            let mut s = engine.begin();
            let (rid, row) = s
                .lookup_u32(NamedIndex::SupplierPk, suppkey)
                .unwrap()
                .expect("supplier");
            let ytd = row[supplier::YTD].as_money().unwrap();
            s.update(
                TableId::Supplier,
                rid,
                row_with(
                    &row,
                    supplier::YTD,
                    Value::Money(ytd + Money::from_cents(kill_amount)),
                ),
            )
            .unwrap();
            s.insert(
                TableId::History,
                row_from([
                    Value::U64(kill_amount as u64),
                    Value::U32(suppkey),
                    Value::Money(Money::from_cents(kill_amount)),
                ]),
            )
            .unwrap();
            match s.commit() {
                Ok(receipt) => assert!(
                    !receipt.is_acked(),
                    "seed {seed}: a killed durability wait must not ack"
                ),
                Err(e) => assert!(
                    !e.is_retryable() || e.is_commit_in_doubt(),
                    "seed {seed}: unexpected outcome {e}"
                ),
            }
        }
        // Replay the per-shard WAL merge three times. Every replay must
        // resolve the in-doubt commit the same way — and since its record
        // never hit the coordinator's disk, that way is "dropped whole":
        // neither the supplier leg nor the history leg survives.
        let mut fingerprints = Vec::new();
        for replay in 0..3 {
            let engine = ShdEngine::try_new(durable_sharded_config(&dir))
                .unwrap_or_else(|e| panic!("seed {seed} replay {replay}: reopen: {e}"));
            let amounts = history_amounts(&engine);
            let ytds = ytd_vector(&engine);
            assert_eq!(
                amounts.iter().sum::<i64>(),
                ytds.iter().sum::<i64>(),
                "seed {seed} replay {replay}: recovery tore a cross-shard commit"
            );
            assert!(
                !amounts.contains(&kill_amount),
                "seed {seed} replay {replay}: the undurable 2PC record resurrected"
            );
            assert_eq!(amounts.len(), 12, "seed {seed}: the acked prefix survived");
            fingerprints.push((amounts, ytds));
        }
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: replays diverged — in-doubt resolution is nondeterministic"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Release-mode scaling smoke (CI: `--release --ignored`): shard-local
/// update throughput at shards=4 must beat shards=1 by the redesign's
/// 1.8x floor. Eight closed-loop clients, disjoint key ranges (zero lock
/// conflicts), durability off so the kernel's commit critical section is
/// the measured object.
#[test]
#[ignore = "release-mode scaling smoke; run with --release --ignored"]
fn shard_scaling_smoke_tps4_beats_tps1() {
    const CLIENTS: u32 = 8;
    const PER_CLIENT: u32 = 32; // suppliers per client, disjoint
    // Shard scaling is core scaling: on a box without the cores to run
    // shards in parallel the ratio is physically capped at 1x, so the
    // smoke only means something on the multi-core CI runner.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        // A silent self-skip would read as a pass in CI. The `skipped:`
        // line is a contract: the CI step greps for exactly this reason
        // (with --nocapture) and fails on any other skip.
        println!("skipped: shard-scaling smoke needs >= 4 cores, have {cores}");
        return;
    }
    let tps = |shards: u32| -> f64 {
        let engine = Arc::new(ShdEngine::new(sharded_config(shards)));
        load_suppliers(&engine, CLIENTS * PER_CLIENT);
        let run = |window: Duration, record: bool| -> u64 {
            let committed = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for client in 0..CLIENTS {
                    let engine = Arc::clone(&engine);
                    let committed = &committed;
                    scope.spawn(move || {
                        let lo = client * PER_CLIENT + 1;
                        let deadline = Instant::now() + window;
                        let mut k = lo;
                        let mut n = 0u64;
                        while Instant::now() < deadline {
                            let mut s = engine.begin();
                            let (rid, row) = s
                                .lookup_u32(NamedIndex::SupplierPk, k)
                                .unwrap()
                                .expect("supplier");
                            let ytd = row[supplier::YTD].as_money().unwrap();
                            s.update(
                                TableId::Supplier,
                                rid,
                                row_with(
                                    &row,
                                    supplier::YTD,
                                    Value::Money(ytd + Money::from_cents(1)),
                                ),
                            )
                            .unwrap();
                            if s.commit().expect("no conflicts possible").is_acked() {
                                n += 1;
                            }
                            k += 1;
                            if k == lo + PER_CLIENT {
                                k = lo;
                            }
                        }
                        if record {
                            committed.fetch_add(n, Ordering::Relaxed);
                        }
                    });
                }
            });
            committed.load(Ordering::Relaxed)
        };
        run(Duration::from_millis(200), false); // warmup
        let window = Duration::from_millis(800);
        run(window, true) as f64 / window.as_secs_f64()
    };
    let tps1 = tps(1);
    let tps4 = tps(4);
    eprintln!("shard scaling: tps(1)={tps1:.0} tps(4)={tps4:.0} ({:.2}x)", tps4 / tps1);
    assert!(
        tps4 >= 1.8 * tps1,
        "shards=4 must scale >= 1.8x over shards=1: got {tps1:.0} -> {tps4:.0} \
         ({:.2}x)",
        tps4 / tps1
    );
}
