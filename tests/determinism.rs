//! Determinism of the morsel-parallel analytical executor.
//!
//! The redesigned execution API promises that `QueryOpts::parallelism` is
//! a *performance* knob, never a *semantics* knob: for any snapshot, the
//! answer at parallelism 8 is byte-identical to the serial answer. These
//! tests pin that promise on every engine design, both while transactional
//! traffic is running (each run internally consistent, snapshot-stable)
//! and quiesced (byte-identical across parallelism levels).

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use hattrick_repro::bench::workload::{run_transaction, TxnKind, WorkloadState};
use hattrick_repro::common::rng::HatRng;
use hattrick_repro::engine::{HtapEngine, QueryOpts, ScanMode};
use hattrick_repro::query::exec::{execute_with, QueryOutput};
use hattrick_repro::query::spec::QueryId;
use hattrick_repro::query::ssb;
use hattrick_repro::query::view::MixedView;

const PARALLELISMS: [usize; 3] = [1, 2, 8];

/// The comparable part of a query answer: everything except the
/// plan-dependent `stats` diagnostics.
fn answer_bytes(out: &QueryOutput) -> String {
    format!("{:?}|{}|{:?}", out.groups, out.matched_rows, out.freshness)
}

/// Group keys must come out sorted regardless of which worker saw which
/// morsel — the merge is ordered, not arrival-ordered.
fn assert_sorted_keys(name: &str, out: &QueryOutput) {
    let keys: Vec<_> = out.groups.iter().map(|g| g.key.clone()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "{name}: group keys not in canonical order");
}

/// Waits for replication/learner pipelines to drain so repeated queries
/// read the same horizon.
fn wait_quiesced(engine: &dyn HtapEngine) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.stats().replication_backlog > 0 {
        assert!(Instant::now() < deadline, "replication backlog never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn all_queries_byte_identical_across_parallelism_on_every_engine() {
    let data = common::small_data();
    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        let state = WorkloadState::new(&data.profile);

        // Phase 1: concurrent T traffic. Parallel queries must stay
        // internally consistent while writers install versions.
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for client in 0..2u32 {
                let engine = &*engine;
                let profile = &data.profile;
                let state = &state;
                let stop = &stop;
                scope.spawn(move || {
                    let mut rng = HatRng::seeded(0xDE7 + client as u64);
                    let mut txnnum = 1;
                    while !stop.load(Ordering::Relaxed) {
                        let kind =
                            if txnnum % 3 == 0 { TxnKind::Payment } else { TxnKind::NewOrder };
                        match run_transaction(
                            engine, profile, state, &mut rng, kind, client, txnnum,
                        ) {
                            Ok(_) => txnnum += 1,
                            // Conflict aborts are expected under two
                            // serializable writers; just try again.
                            Err(e) if e.is_retryable() => {}
                            Err(e) => panic!("writer {client}: {e}"),
                        }
                    }
                });
            }
            for qid in [QueryId::Q1_1, QueryId::Q2_1, QueryId::Q4_1] {
                let spec = ssb::query(qid);
                for p in PARALLELISMS {
                    let out = engine
                        .query(&spec, &QueryOpts::with_parallelism(p))
                        .unwrap();
                    assert_sorted_keys(name, &out);
                    assert!(
                        out.stats.agg_saturations == 0,
                        "{name}: unexpected aggregate saturation at this scale"
                    );
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Phase 2: quiesce, then demand byte-identity for the full SSB
        // suite across parallelism levels.
        wait_quiesced(engine.as_ref());
        for qid in QueryId::ALL {
            let spec = ssb::query(qid);
            let serial = engine
                .query(&spec, &QueryOpts::with_parallelism(1))
                .unwrap();
            let serial_bytes = answer_bytes(&serial);
            for p in &PARALLELISMS[1..] {
                let parallel = engine
                    .query(&spec, &QueryOpts::with_parallelism(*p))
                    .unwrap();
                assert_eq!(
                    answer_bytes(&parallel),
                    serial_bytes,
                    "{name}: {} not byte-identical at parallelism {p}",
                    qid.label()
                );
            }
        }
    }
}

#[test]
fn vectorized_and_scalar_scans_byte_identical_on_every_engine() {
    // The batch scan API promises `ScanMode` is a performance knob, never
    // a semantics knob: the vectorized kernels (dict-code comparisons,
    // run-at-a-time RLE, zone-map pruning, late materialization) must
    // return the same bytes as the scalar reference path for every SSB
    // query on every engine design, serial and parallel.
    let data = common::small_data();
    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        let state = WorkloadState::new(&data.profile);

        // Phase 1: concurrent T traffic. Vectorized parallel queries must
        // stay internally consistent while writers install versions.
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for client in 0..2u32 {
                let engine = &*engine;
                let profile = &data.profile;
                let state = &state;
                let stop = &stop;
                scope.spawn(move || {
                    let mut rng = HatRng::seeded(0xBA7C + client as u64);
                    let mut txnnum = 1;
                    while !stop.load(Ordering::Relaxed) {
                        let kind =
                            if txnnum % 3 == 0 { TxnKind::Payment } else { TxnKind::NewOrder };
                        match run_transaction(
                            engine, profile, state, &mut rng, kind, client, txnnum,
                        ) {
                            Ok(_) => txnnum += 1,
                            Err(e) if e.is_retryable() => {}
                            Err(e) => panic!("writer {client}: {e}"),
                        }
                    }
                });
            }
            for qid in [QueryId::Q1_1, QueryId::Q2_1, QueryId::Q4_1] {
                let spec = ssb::query(qid);
                for mode in [ScanMode::Vectorized, ScanMode::Scalar] {
                    let out = engine
                        .query(&spec, &QueryOpts::with_parallelism(8).scan_mode(mode))
                        .unwrap();
                    assert_sorted_keys(name, &out);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Phase 2: quiesce, then demand byte-identity between scan modes
        // for the full SSB suite at every parallelism level.
        wait_quiesced(engine.as_ref());
        for qid in QueryId::ALL {
            let spec = ssb::query(qid);
            for p in PARALLELISMS {
                let scalar = engine
                    .query(
                        &spec,
                        &QueryOpts::with_parallelism(p).scan_mode(ScanMode::Scalar),
                    )
                    .unwrap();
                let vectorized = engine
                    .query(
                        &spec,
                        &QueryOpts::with_parallelism(p).scan_mode(ScanMode::Vectorized),
                    )
                    .unwrap();
                assert_eq!(
                    answer_bytes(&vectorized),
                    answer_bytes(&scalar),
                    "{name}: {} vectorized != scalar at parallelism {p}",
                    qid.label()
                );
            }
        }
    }
}

/// Replays the same seeded single-writer transaction sequence against
/// `engine` while a query thread applies concurrent read pressure (each
/// answer checked for internal consistency). A single writer never
/// conflicts, so the committed history — and every commit timestamp — is
/// identical across engines fed the same seed.
fn run_fixed_workload(engine: &dyn HtapEngine, data: &hattrick_repro::bench::gen::GeneratedData) {
    let state = WorkloadState::new(&data.profile);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop_ref = &stop;
        scope.spawn(move || {
            let spec = ssb::query(QueryId::Q3_2);
            while !stop_ref.load(Ordering::Relaxed) {
                let out = engine
                    .query(&spec, &QueryOpts::with_parallelism(2))
                    .unwrap();
                assert_sorted_keys("concurrent", &out);
            }
        });
        let mut rng = HatRng::seeded(0xACE);
        for txnnum in 1..=300u64 {
            let kind = if txnnum % 3 == 0 { TxnKind::Payment } else { TxnKind::NewOrder };
            assert!(run_transaction(engine, &data.profile, &state, &mut rng, kind, 0, txnnum)
                .expect("single writer cannot conflict").is_acked());
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn answers_identical_with_vacuum_off_and_aggressive() {
    // The vacuum must be invisible to query semantics: after the same
    // committed history, every SSB answer with an aggressive 1ms vacuum
    // (which pruned thousands of versions while writers and readers ran)
    // is byte-identical to the answer with the vacuum disabled.
    use hattrick_repro::common::telemetry::names;

    let data = common::small_data();
    let off = common::all_engines_with_vacuum(None);
    let aggressive =
        common::all_engines_with_vacuum(Some(Duration::from_millis(1)));
    let mut total_pruned = 0;
    for ((name, e_off), (_, e_fast)) in off.into_iter().zip(aggressive) {
        data.load_into(e_off.as_ref()).unwrap();
        data.load_into(e_fast.as_ref()).unwrap();
        run_fixed_workload(e_off.as_ref(), &data);
        run_fixed_workload(e_fast.as_ref(), &data);
        wait_quiesced(e_off.as_ref());
        wait_quiesced(e_fast.as_ref());
        // Let the CoW refresher re-pin at the final timestamp and give
        // the aggressive vacuum a last few cycles over the settled state.
        std::thread::sleep(Duration::from_millis(60));
        for qid in QueryId::ALL {
            let spec = ssb::query(qid);
            let a = e_off.query(&spec, &QueryOpts::with_parallelism(1)).unwrap();
            let b = e_fast.query(&spec, &QueryOpts::with_parallelism(1)).unwrap();
            assert_eq!(
                answer_bytes(&a),
                answer_bytes(&b),
                "{name}: {} differs between vacuum off and 1ms vacuum",
                qid.label()
            );
        }
        assert_eq!(
            e_off.metrics().counter(names::VACUUM_PASSES),
            0,
            "{name}: --no-vacuum engine still ran vacuum passes"
        );
        total_pruned += e_fast.metrics().counter(names::VACUUM_VERSIONS_PRUNED);
    }
    assert!(
        total_pruned > 0,
        "aggressive vacuum never pruned anything — the comparison is vacuous"
    );
}

#[test]
fn pinned_snapshot_parallel_probe_ignores_concurrent_inserts() {
    // Snapshot stability: a view pinned at ts must return the same bytes
    // from a parallel probe no matter how many versions writers install
    // after the pin. This drives the executor directly, bypassing the
    // engine's per-query read-ts so the snapshot genuinely stays fixed.
    use hattrick_repro::engine::ShdEngine;

    let data = common::small_data();
    let engine = ShdEngine::new(common::fast_engine_config());
    data.load_into(&engine).unwrap();
    let state = WorkloadState::new(&data.profile);
    let kernel = engine.kernel();
    let pinned_ts = kernel.oracle.read_ts();
    let spec = ssb::query(QueryId::Q3_2);
    let baseline = {
        let view = MixedView::rows(&kernel.db, pinned_ts);
        answer_bytes(&execute_with(&spec, &view, &QueryOpts::with_parallelism(1)))
    };

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let profile = &data.profile;
        let state = &state;
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut rng = HatRng::seeded(0x5EED);
            let mut txnnum = 1;
            while !stop_ref.load(Ordering::Relaxed) {
                assert!(run_transaction(
                    engine_ref, profile, state, &mut rng, TxnKind::NewOrder, 0, txnnum,
                )
                .unwrap().is_acked());
                txnnum += 1;
            }
        });
        for p in PARALLELISMS {
            for _ in 0..5 {
                let view = MixedView::rows(&kernel.db, pinned_ts);
                let out = execute_with(&spec, &view, &QueryOpts::with_parallelism(p));
                assert_eq!(
                    answer_bytes(&out),
                    baseline,
                    "pinned snapshot drifted at parallelism {p}"
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
}
