//! Determinism of the morsel-parallel analytical executor.
//!
//! The redesigned execution API promises that `QueryOpts::parallelism` is
//! a *performance* knob, never a *semantics* knob: for any snapshot, the
//! answer at parallelism 8 is byte-identical to the serial answer. These
//! tests pin that promise on every engine design, both while transactional
//! traffic is running (each run internally consistent, snapshot-stable)
//! and quiesced (byte-identical across parallelism levels).

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use hattrick_repro::bench::workload::{run_transaction, TxnKind, WorkloadState};
use hattrick_repro::common::rng::HatRng;
use hattrick_repro::engine::{HtapEngine, QueryOpts};
use hattrick_repro::query::exec::{execute_with, QueryOutput};
use hattrick_repro::query::spec::QueryId;
use hattrick_repro::query::ssb;
use hattrick_repro::query::view::MixedView;

const PARALLELISMS: [usize; 3] = [1, 2, 8];

/// The comparable part of a query answer: everything except the
/// plan-dependent `stats` diagnostics.
fn answer_bytes(out: &QueryOutput) -> String {
    format!("{:?}|{}|{:?}", out.groups, out.matched_rows, out.freshness)
}

/// Group keys must come out sorted regardless of which worker saw which
/// morsel — the merge is ordered, not arrival-ordered.
fn assert_sorted_keys(name: &str, out: &QueryOutput) {
    let keys: Vec<_> = out.groups.iter().map(|g| g.key.clone()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "{name}: group keys not in canonical order");
}

/// Waits for replication/learner pipelines to drain so repeated queries
/// read the same horizon.
fn wait_quiesced(engine: &dyn HtapEngine) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.stats().replication_backlog > 0 {
        assert!(Instant::now() < deadline, "replication backlog never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn all_queries_byte_identical_across_parallelism_on_every_engine() {
    let data = common::small_data();
    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        let state = WorkloadState::new(&data.profile);

        // Phase 1: concurrent T traffic. Parallel queries must stay
        // internally consistent while writers install versions.
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for client in 0..2u32 {
                let engine = &*engine;
                let profile = &data.profile;
                let state = &state;
                let stop = &stop;
                scope.spawn(move || {
                    let mut rng = HatRng::seeded(0xDE7 + client as u64);
                    let mut txnnum = 1;
                    while !stop.load(Ordering::Relaxed) {
                        let kind =
                            if txnnum % 3 == 0 { TxnKind::Payment } else { TxnKind::NewOrder };
                        match run_transaction(
                            engine, profile, state, &mut rng, kind, client, txnnum,
                        ) {
                            Ok(_) => txnnum += 1,
                            // Conflict aborts are expected under two
                            // serializable writers; just try again.
                            Err(e) if e.is_retryable() => {}
                            Err(e) => panic!("writer {client}: {e}"),
                        }
                    }
                });
            }
            for qid in [QueryId::Q1_1, QueryId::Q2_1, QueryId::Q4_1] {
                let spec = ssb::query(qid);
                for p in PARALLELISMS {
                    let out = engine
                        .run_query_opts(&spec, &QueryOpts::with_parallelism(p))
                        .unwrap();
                    assert_sorted_keys(name, &out);
                    assert!(
                        out.stats.agg_saturations == 0,
                        "{name}: unexpected aggregate saturation at this scale"
                    );
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Phase 2: quiesce, then demand byte-identity for the full SSB
        // suite across parallelism levels.
        wait_quiesced(engine.as_ref());
        for qid in QueryId::ALL {
            let spec = ssb::query(qid);
            let serial = engine
                .run_query_opts(&spec, &QueryOpts::with_parallelism(1))
                .unwrap();
            let serial_bytes = answer_bytes(&serial);
            for p in &PARALLELISMS[1..] {
                let parallel = engine
                    .run_query_opts(&spec, &QueryOpts::with_parallelism(*p))
                    .unwrap();
                assert_eq!(
                    answer_bytes(&parallel),
                    serial_bytes,
                    "{name}: {} not byte-identical at parallelism {p}",
                    qid.label()
                );
            }
        }
    }
}

#[test]
fn pinned_snapshot_parallel_probe_ignores_concurrent_inserts() {
    // Snapshot stability: a view pinned at ts must return the same bytes
    // from a parallel probe no matter how many versions writers install
    // after the pin. This drives the executor directly, bypassing the
    // engine's per-query read-ts so the snapshot genuinely stays fixed.
    use hattrick_repro::engine::ShdEngine;

    let data = common::small_data();
    let engine = ShdEngine::new(common::fast_engine_config());
    data.load_into(&engine).unwrap();
    let state = WorkloadState::new(&data.profile);
    let kernel = engine.kernel();
    let pinned_ts = kernel.oracle.read_ts();
    let spec = ssb::query(QueryId::Q3_2);
    let baseline = {
        let view = MixedView::rows(&kernel.db, pinned_ts);
        answer_bytes(&execute_with(&spec, &view, &QueryOpts::with_parallelism(1)))
    };

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let profile = &data.profile;
        let state = &state;
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut rng = HatRng::seeded(0x5EED);
            let mut txnnum = 1;
            while !stop_ref.load(Ordering::Relaxed) {
                run_transaction(
                    engine_ref, profile, state, &mut rng, TxnKind::NewOrder, 0, txnnum,
                )
                .unwrap();
                txnnum += 1;
            }
        });
        for p in PARALLELISMS {
            for _ in 0..5 {
                let view = MixedView::rows(&kernel.db, pinned_ts);
                let out = execute_with(&spec, &view, &QueryOpts::with_parallelism(p));
                assert_eq!(
                    answer_bytes(&out),
                    baseline,
                    "pinned snapshot drifted at parallelism {p}"
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
}
