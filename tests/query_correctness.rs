//! Cross-checks the query executor against an independent reference
//! evaluator, on every engine backend (row-store scans in the shared
//! engine, columnar segments + delta in the hybrid engines, replica reads
//! in the isolated engine).
//!
//! The reference evaluator works directly on the generated `Vec<Row>`s —
//! a completely separate code path from stores, views, and operators — so
//! agreement on all 13 SSB queries is strong evidence both are right.

mod common;

use std::collections::HashMap;

use hattrick_repro::bench::gen::GeneratedData;
use hattrick_repro::common::{Row, Value};
use hattrick_repro::query::predicate::{ColPredicate, Predicate};
use hattrick_repro::query::spec::{AggExpr, GroupKey, QueryId, QuerySpec};
use hattrick_repro::query::ssb;
use hattrick_repro::engine::QueryOpts;

/// Evaluates one predicate directly on a raw row.
fn eval_pred(p: &ColPredicate, row: &Row) -> bool {
    match p {
        ColPredicate::U32Eq(c, v) => row[*c].as_u32().unwrap() == *v,
        ColPredicate::U32Between(c, lo, hi) => {
            let x = row[*c].as_u32().unwrap();
            *lo <= x && x <= *hi
        }
        ColPredicate::U32In(c, vs) => vs.contains(&row[*c].as_u32().unwrap()),
        ColPredicate::StrEq(c, s) => row[*c].as_str().unwrap() == s,
        ColPredicate::StrIn(c, vs) => {
            let x = row[*c].as_str().unwrap();
            vs.iter().any(|s| s == x)
        }
        ColPredicate::StrBetween(c, lo, hi) => {
            let x = row[*c].as_str().unwrap();
            lo.as_str() <= x && x <= hi.as_str()
        }
    }
}

fn eval_filter(p: &Predicate, row: &Row) -> bool {
    p.conjuncts.iter().all(|c| eval_pred(c, row))
}

/// Key-stringified group value for hashing in the reference path.
fn val_to_string(v: &Value) -> String {
    match v {
        Value::U32(x) => x.to_string(),
        Value::U64(x) => x.to_string(),
        Value::Str(s) => s.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Money(m) => m.cents().to_string(),
    }
}

/// Independent star-join evaluation over the raw generated rows.
fn reference_eval(spec: &QuerySpec, data: &GeneratedData) -> HashMap<String, i64> {
    // Dimension hash tables: key -> payload values.
    let mut dims: Vec<HashMap<u32, Vec<Value>>> = Vec::new();
    for join in &spec.joins {
        let mut map = HashMap::new();
        for row in data.rows(join.dim) {
            if eval_filter(&join.dim_filter, row) {
                let key = row[join.dim_key].as_u32().unwrap();
                let payload: Vec<Value> =
                    join.payload.iter().map(|&c| row[c].clone()).collect();
                map.insert(key, payload);
            }
        }
        dims.push(map);
    }
    let mut groups: HashMap<String, i64> = HashMap::new();
    'rows: for row in data.rows(spec.fact) {
        if !eval_filter(&spec.fact_filter, row) {
            continue;
        }
        let mut payloads: Vec<&Vec<Value>> = Vec::new();
        for (ji, join) in spec.joins.iter().enumerate() {
            match dims[ji].get(&row[join.fact_key].as_u32().unwrap()) {
                Some(p) => payloads.push(p),
                None => continue 'rows,
            }
        }
        let key: Vec<String> = spec
            .group_by
            .iter()
            .map(|gk| match gk {
                GroupKey::FactU32(c) => row[*c].as_u32().unwrap().to_string(),
                GroupKey::DimU32(ji, pi) | GroupKey::DimStr(ji, pi) => {
                    val_to_string(&payloads[*ji][*pi])
                }
            })
            .collect();
        let delta = match spec.agg {
            AggExpr::SumMoney(c) => row[c].as_money().unwrap().cents(),
            AggExpr::SumMoneyTimesPct(m, p) => row[m]
                .as_money()
                .unwrap()
                .pct(row[p].as_u32().unwrap() as i64)
                .cents(),
            AggExpr::SumMoneyDiff(a, b) => {
                (row[a].as_money().unwrap() - row[b].as_money().unwrap()).cents()
            }
            AggExpr::CountRows => 1,
        };
        *groups.entry(key.join("|")).or_insert(0) += delta;
    }
    if groups.is_empty() && spec.group_by.is_empty() {
        groups.insert(String::new(), 0);
    }
    groups
}

#[test]
fn all_13_queries_match_reference_on_every_engine() {
    let data = common::small_data();
    let reference: Vec<(QueryId, HashMap<String, i64>)> = QueryId::ALL
        .iter()
        .map(|&id| (id, reference_eval(&ssb::query(id), &data)))
        .collect();
    // At least some queries must be non-trivial at this scale, otherwise
    // the test proves nothing.
    let nonzero = reference
        .iter()
        .filter(|(_, g)| g.values().any(|&v| v != 0))
        .count();
    assert!(nonzero >= 6, "only {nonzero} queries had non-empty results");

    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        for (id, expected) in &reference {
            let out = engine.query(&ssb::query(*id), &QueryOpts::default()).unwrap();
            let got: HashMap<String, i64> = out
                .groups
                .iter()
                .map(|g| {
                    let key: Vec<String> =
                        g.key.iter().map(|v| v.to_string()).collect();
                    (key.join("|"), g.agg)
                })
                .collect();
            assert_eq!(
                &got, expected,
                "{name}: {} diverged from reference",
                id.label()
            );
        }
    }
}

#[test]
fn queries_reflect_new_orders_identically_across_engines() {
    use hattrick_repro::bench::workload::{run_transaction, TxnKind, WorkloadState};
    use hattrick_repro::common::rng::HatRng;

    let data = common::small_data();
    let mut totals: Vec<(String, i64, u64)> = Vec::new();
    for (name, engine) in common::all_engines() {
        data.load_into(engine.as_ref()).unwrap();
        let state = WorkloadState::new(&data.profile);
        // Same seed -> same generated orders on every engine.
        let mut rng = HatRng::seeded(777);
        for i in 1..=25 {
            assert!(run_transaction(
                engine.as_ref(),
                &data.profile,
                &state,
                &mut rng,
                TxnKind::NewOrder,
                0,
                i,
            )
            .unwrap().is_acked());
        }
        // Q3.1 aggregates revenue; new orders change it deterministically.
        let out = engine.query(&ssb::query(QueryId::Q3_1), &QueryOpts::default()).unwrap();
        let total: i64 = out.groups.iter().map(|g| g.agg).sum();
        let rows: u64 = out.matched_rows;
        totals.push((name.to_string(), total, rows));
    }
    let (first_total, first_rows) = (totals[0].1, totals[0].2);
    for (name, total, rows) in &totals {
        assert_eq!(*total, first_total, "{name} total revenue diverged");
        assert_eq!(*rows, first_rows, "{name} matched rows diverged");
    }
}

#[test]
fn index_prefilter_and_full_scan_agree_on_flight_one() {
    // Regression for the prefilter fast path: the date-index plan must
    // produce the exact same QueryOutput (groups, matched_rows, freshness
    // side-read) as a full MixedView scan of the same snapshot. Run some
    // transactions first so the snapshot is not just the loaded state.
    use hattrick_repro::bench::workload::{run_transaction, TxnKind, WorkloadState};
    use hattrick_repro::common::rng::HatRng;
    use hattrick_repro::engine::{HtapEngine, QueryOpts, ShdEngine};
    use hattrick_repro::query::exec::execute;
    use hattrick_repro::query::view::MixedView;

    let data = common::small_data();
    let engine = ShdEngine::new(common::fast_engine_config());
    data.load_into(&engine).unwrap();
    let state = WorkloadState::new(&data.profile);
    let mut rng = HatRng::seeded(4242);
    for i in 1..=20 {
        assert!(run_transaction(&engine, &data.profile, &state, &mut rng, TxnKind::NewOrder, 0, i)
            .unwrap().is_acked());
    }

    for id in [QueryId::Q1_1, QueryId::Q1_2, QueryId::Q1_3] {
        let spec = ssb::query(id);
        // The engine's plan: index prefilter (flight 1 always has a date
        // range hint and the default profile includes the orderdate index).
        let fast = engine.query(&spec, &QueryOpts::default()).unwrap();
        // The reference plan: full scan of the same snapshot.
        let ts = engine.kernel().oracle.read_ts();
        let view = MixedView::rows(&engine.kernel().db, ts);
        let slow = execute(&spec, &view);
        assert_eq!(fast, slow, "{}: prefilter plan diverged from full scan", id.label());
        assert_eq!(fast.matched_rows, slow.matched_rows, "{}", id.label());
        assert_eq!(fast.freshness, slow.freshness, "{}", id.label());
    }
}
