//! Open-loop overload and metastable-failure suite.
//!
//! The closed-loop harness structurally cannot observe overload: τ
//! clients each wait for their previous request, so offered load tracks
//! capacity by construction. These tests drive the open-loop driver
//! (`Harness::run_open_loop`) where offered load is an *input*, and check
//! the overload contract end to end:
//!
//! 1. **Predictable shedding** — a seeded 10× step burst sheds for
//!    overload reasons (bounded queue, stale sojourn, admission gate),
//!    never silently, and never attributed to storage.
//! 2. **Bounded sojourn for admitted work** — requests that actually
//!    execute have p99 enqueue-to-completion time bounded near the
//!    deadline budget: the CoDel-style stale shed at dequeue keeps the
//!    service pool from wasting time on work whose client already left.
//! 3. **Goodput recovery** — with the shared retry budget armed, goodput
//!    returns to ≥90% of the pre-burst baseline within a fixed number of
//!    ticks after the burst ends.
//! 4. **Metastable control arm** — the *same* schedule with the budget
//!    off and a generous per-client attempt cap keeps feeding its own
//!    backlog with retries of timed-out (often already-committed) work,
//!    and demonstrably fails to recover in the same window — the
//!    metastable failure the budget exists to prevent.
//!
//! Everything is seeded; `service_pad` plus a one-shot capacity
//! calibration pin the offered-load ratios so they hold across hardware
//! and debug/release builds.

mod common;

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{
    BenchmarkConfig, Harness, OpenLoopMeasurement, RetryBudgetConfig, RetryPolicy,
};
use hattrick_repro::bench::openloop::{ArrivalShape, OpenLoopConfig};
use hattrick_repro::bench::report;
use hattrick_repro::common::telemetry::names;
use hattrick_repro::engine::{AdmissionConfig, EngineConfig, ShdEngine};

/// Tick layout of the step-overload schedule: base load, a 10× burst,
/// then a recovery window in which goodput must return.
const TICK: Duration = Duration::from_millis(10);
const TICKS: u32 = 60;
const BURST_FROM: u32 = 20;
const BURST_UNTIL: u32 = 35;
/// Ticks granted for the system to work off the burst before the
/// recovery window where goodput is judged.
const SETTLE_TICKS: u32 = 5;

/// The pad floors per-request service time at 1ms so serving capacity
/// is mostly machine-independent; the calibration below absorbs what
/// the engine itself adds (which dwarfs the pad in debug builds on slow
/// hardware).
const WORKERS: u32 = 4;
const SERVICE_PAD: Duration = Duration::from_millis(1);
const DEADLINE: Duration = Duration::from_millis(25);

/// Offered base load: 50% of the worker pool's *measured* capacity.
/// Calibrated once per process from a short single-client closed loop,
/// so the load ratios that drive every assertion (base ≈ 0.5×, burst
/// ≈ 5× capacity) hold across debug/release builds and machine speeds.
fn base_rate() -> f64 {
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        let data = generate(ScaleFactor(0.001), 0xD5);
        let engine = ShdEngine::new(EngineConfig::default());
        data.load_into(&engine).unwrap();
        let h = Harness::new(
            Arc::new(engine),
            data.profile.clone(),
            BenchmarkConfig {
                seed: 0xCA11,
                warmup: Duration::from_millis(50),
                measure: Duration::from_millis(250),
                ..BenchmarkConfig::default()
            },
        );
        let tps = h.run_point(1, 0).unwrap().tps.max(50.0);
        let per_req = 1.0 / tps + SERVICE_PAD.as_secs_f64();
        0.5 * f64::from(WORKERS) / per_req
    })
}

/// Serializes the open-loop runs: each drives a worker pool plus a
/// generator against wall-clock deadlines, so two tests sharing cores
/// would perturb each other's timing. (Sibling test *binaries* already
/// run sequentially; this guards the threads within this one.)
static DRIVER: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    DRIVER.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs a timing-sensitive experiment up to three times. These tests
/// assert capacity *ratios* over wall-clock windows, and a CPU-steal
/// spike on a shared runner can smear any single window; a real
/// regression in shedding/recovery logic fails all three attempts.
fn with_noise_retries(f: impl Fn()) {
    for attempt in 0..3 {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f)) {
            Ok(()) => return,
            Err(payload) => {
                if attempt == 2 {
                    std::panic::resume_unwind(payload);
                }
                eprintln!("timing-sensitive attempt {attempt} failed; retrying");
            }
        }
    }
}

fn overload_harness(retry: RetryPolicy) -> Harness {
    let data = generate(ScaleFactor(0.001), 0xD5);
    let engine = ShdEngine::new(EngineConfig::default());
    data.load_into(&engine).unwrap();
    Harness::new(
        Arc::new(engine),
        data.profile.clone(),
        BenchmarkConfig { seed: 0xBEEF, retry, ..BenchmarkConfig::default() },
    )
}

fn step_config() -> OpenLoopConfig {
    OpenLoopConfig {
        arrival_rate: base_rate(),
        shape: ArrivalShape::Step {
            mult: 10.0,
            from_tick: BURST_FROM,
            until_tick: BURST_UNTIL,
        },
        deadline: DEADLINE,
        workers: WORKERS,
        queue_cap: 4096,
        ticks: TICKS,
        tick: TICK,
        service_pad: SERVICE_PAD,
    }
}

/// Both arms use the same generous per-client attempt cap — real clients
/// retry nearly indefinitely, and per-client caps are exactly the
/// protection that does NOT compose under overload (every client fails
/// at once). The shared budget is the only difference between the arms.
const CLIENT_ATTEMPTS: u32 = 200;

fn budget_policy() -> RetryPolicy {
    RetryPolicy {
        budget: Some(RetryBudgetConfig { cap: 50, refill_per_success: 0.1 }),
        max_attempts: CLIENT_ATTEMPTS,
        ..RetryPolicy::default()
    }
}

fn unbudgeted_policy() -> RetryPolicy {
    RetryPolicy { budget: None, max_attempts: CLIENT_ATTEMPTS, ..RetryPolicy::default() }
}

/// Sums `f` over the ticks in `[from, until)`.
fn window(m: &OpenLoopMeasurement, from: u32, until: u32, f: fn(&hattrick_repro::bench::openloop::OpenLoopTick) -> u64) -> u64 {
    m.ticks
        .iter()
        .filter(|t| t.tick >= from && t.tick < until)
        .map(f)
        .sum()
}

#[test]
fn step_burst_sheds_predictably_and_recovers_with_budget() {
    let _x = exclusive();
    with_noise_retries(step_burst_case);
}

fn step_burst_case() {
    let harness = overload_harness(budget_policy());
    let m = harness.run_open_loop(&step_config()).unwrap();

    // The schedule really is a step: burst ticks offer ~10x base ticks.
    let base_offered = window(&m, 0, BURST_FROM, |t| t.offered);
    let burst_offered = window(&m, BURST_FROM, BURST_UNTIL, |t| t.offered);
    let per_tick_base = base_offered as f64 / BURST_FROM as f64;
    let per_tick_burst = burst_offered as f64 / (BURST_UNTIL - BURST_FROM) as f64;
    assert!(
        per_tick_burst > 5.0 * per_tick_base,
        "burst must dwarf base: {per_tick_burst:.0}/tick vs {per_tick_base:.0}/tick"
    );

    // 1. The burst sheds, and sheds are attributed to overload — not to
    //    storage (the disk is healthy the whole run).
    let burst_shed = window(&m, BURST_FROM, BURST_UNTIL + SETTLE_TICKS, |t| {
        t.shed_overload()
    });
    assert!(
        burst_shed > 0,
        "a 5x-over-capacity burst must shed (shed {burst_shed})"
    );
    assert_eq!(m.shed_degraded(), 0, "healthy disk: no storage-cause sheds");

    // Baseline ticks don't shed: the base rate is ~50% of pinned
    // capacity. (Allow stragglers in the very first tick while worker
    // threads spin up.)
    let pre_burst_shed = window(&m, 2, BURST_FROM, |t| t.shed_total());
    let pre_burst_offered = window(&m, 2, BURST_FROM, |t| t.offered);
    assert!(
        (pre_burst_shed as f64) < 0.05 * pre_burst_offered as f64,
        "under-capacity base load must not shed ({pre_burst_shed} of {pre_burst_offered})"
    );

    // 2. Sojourn of *executed* requests is bounded: the stale shed at
    //    dequeue means nothing waits longer than the deadline budget and
    //    then still runs, so even through the burst p99 stays within ~2×
    //    the deadline (service time + scheduling slack) instead of the
    //    unbounded queueing delay an ungated system would show.
    assert!(!m.sojourn.is_empty());
    let p99_ms = m.sojourn.quantile(0.99) as f64 / 1e6;
    let bound_ms = (2 * DEADLINE).as_secs_f64() * 1e3;
    assert!(
        p99_ms <= bound_ms,
        "p99 sojourn {p99_ms:.1}ms must stay under {bound_ms:.1}ms"
    );

    // 3. Goodput recovery: after the burst (plus settle ticks), the
    //    within-deadline completion rate returns to ≥90% of the
    //    pre-burst baseline — the system did not stay collapsed.
    let goodput_ratio = |from: u32, until: u32| {
        let g = window(&m, from, until, |t| t.goodput);
        let o = window(&m, from, until, |t| t.offered).max(1);
        g as f64 / o as f64
    };
    let base_ratio = goodput_ratio(2, BURST_FROM);
    let rec_ratio = goodput_ratio(BURST_UNTIL + SETTLE_TICKS, TICKS);
    assert!(
        base_ratio >= 0.75,
        "under-capacity baseline should mostly meet deadlines ({base_ratio:.2})"
    );
    assert!(
        rec_ratio >= 0.90 * base_ratio,
        "recovery goodput ratio {rec_ratio:.2} < 90% of baseline {base_ratio:.2}"
    );

    // The retry budget stayed bounded: the burst cannot mint more
    // retries than cap + earned refills.
    let earned = (m.goodput() as f64 * 0.1) as u64;
    assert!(
        m.retries() <= 50 + earned,
        "budgeted retries {} must be ≤ cap 50 + earned {earned}",
        m.retries()
    );

    // Accounting closes: every offered request has exactly one first-
    // attempt fate, and attempts balance (offered + retries = enqueued
    // fates + queue drops).
    assert_eq!(
        m.offered(),
        window(&m, 0, TICKS, |t| t.enqueued) + window(&m, 0, TICKS, |t| t.shed_queue),
        "offered = enqueued + shed at enqueue"
    );

    // The artifact/report surface carries the same story.
    let line = report::overload_line(&m.point.metrics).expect("open-loop run reports");
    assert!(line.contains("offered"), "{line}");
    assert!(line.contains("sojourn"), "{line}");
    assert!(m.point.metrics.counter(names::OPENLOOP_OFFERED) == m.offered());
    assert!(m.point.timeseries.len() == TICKS as usize);
    assert!(m.point.timeseries.iter().any(|s| s.shed_overload > 0));
    assert!(m.point.timeseries.iter().all(|s| s.shed == 0));
}

#[test]
fn unbudgeted_control_arm_fails_to_recover() {
    let _x = exclusive();
    with_noise_retries(control_arm_case);
}

fn control_arm_case() {
    // Same seed, same schedule, same capacity — the ONLY difference is
    // the retry budget. The budgeted arm converges after the burst; the
    // control arm's own retries (of shed and timed-out-but-committed
    // work) sustain the overload past the burst's end.
    let budgeted = overload_harness(budget_policy())
        .run_open_loop(&step_config())
        .unwrap();
    let control = overload_harness(unbudgeted_policy())
        .run_open_loop(&step_config())
        .unwrap();

    // Identical offered load per tick (seeded schedule).
    let a: Vec<u64> = budgeted.ticks.iter().map(|t| t.offered).collect();
    let b: Vec<u64> = control.ticks.iter().map(|t| t.offered).collect();
    assert_eq!(a, b, "same seed, same offered schedule");

    // The control arm mints far more retries than the budget allows.
    assert!(
        control.retries() > 4 * budgeted.retries().max(1),
        "control retries {} vs budgeted {}",
        control.retries(),
        budgeted.retries()
    );
    assert_eq!(control.retry_denied(), 0, "no budget, nothing denied");
    assert!(budgeted.retry_denied() > 0, "budget actually bit during the burst");

    // Recovery-window goodput: the budgeted arm returns to ≥90% of its
    // own pre-burst baseline, the control arm stays visibly collapsed —
    // the gap IS the metastable failure.
    let ratio = |m: &OpenLoopMeasurement, from: u32, until: u32| {
        let g = window(m, from, until, |t| t.goodput);
        let o = window(m, from, until, |t| t.offered).max(1);
        g as f64 / o as f64
    };
    let rec_from = BURST_UNTIL + SETTLE_TICKS;
    let baseline = ratio(&budgeted, 2, BURST_FROM);
    let budgeted_ratio = ratio(&budgeted, rec_from, TICKS);
    let control_ratio = ratio(&control, rec_from, TICKS);
    assert!(
        budgeted_ratio >= 0.90 * baseline,
        "budgeted arm must recover: {budgeted_ratio:.2} vs baseline {baseline:.2}"
    );
    assert!(
        control_ratio < 0.75 * baseline,
        "control arm must fail to recover: {control_ratio:.2} vs baseline {baseline:.2}"
    );
    assert!(
        budgeted_ratio - control_ratio >= 0.15,
        "the budget must make a decisive difference: {budgeted_ratio:.2} vs {control_ratio:.2}"
    );
}

#[test]
fn engine_admission_gate_sheds_into_open_loop_accounting() {
    // Arm the engine-side admission gate with a tiny commit budget so
    // saturation surfaces as typed `Overloaded` sheds at the engine, and
    // check they flow into both the open-loop accounting and the
    // engine's own admission counters.
    let _x = exclusive();
    let data = generate(ScaleFactor(0.001), 0xD5);
    let cfg = EngineConfig::builder()
        .admission(AdmissionConfig {
            txn_slots: Some(1),
            queue_cap: 2,
            queue_deadline: Duration::from_micros(200),
            ..AdmissionConfig::default()
        })
        .build();
    let engine = ShdEngine::new(cfg);
    data.load_into(&engine).unwrap();
    let harness = Harness::new(
        Arc::new(engine),
        data.profile.clone(),
        BenchmarkConfig {
            seed: 0xBEEF,
            // Gate sheds are terminal here: no retries, so every shed is
            // visible instead of being papered over.
            retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
            ..BenchmarkConfig::default()
        },
    );
    let ol = OpenLoopConfig {
        arrival_rate: 4000.0,
        shape: ArrivalShape::Poisson,
        deadline: Duration::from_millis(50),
        workers: 8,
        queue_cap: 4096,
        ticks: 30,
        tick: Duration::from_millis(10),
        service_pad: Duration::ZERO,
    };
    let m = harness.run_open_loop(&ol).unwrap();
    assert!(
        window(&m, 0, 30, |t| t.shed_engine) > 0,
        "a one-slot gate under 8 workers must shed at the engine"
    );
    let end = &m.point.metrics_end;
    assert!(end.counter(names::ADMIT_TXN_SHED) > 0, "gate counted its sheds");
    assert!(
        end.counter(names::ADMIT_TXN_OFFERED)
            >= end.counter(names::ADMIT_TXN_ADMITTED) + end.counter(names::ADMIT_TXN_SHED),
        "offered ≥ admitted + shed"
    );
    // A healthy disk keeps the degradation line silent even under heavy
    // overload shedding — the causes are never conflated.
    assert!(report::degradation_line(end).is_none());
    // Engine sheds are overload-cause in the timeseries split.
    assert!(m.point.timeseries.iter().any(|s| s.shed_overload > 0));
}

#[test]
fn open_loop_offered_series_is_deterministic() {
    // Two harnesses, same seed and config: byte-identical offered load
    // per tick, even though completions race real threads.
    let _x = exclusive();
    let a = overload_harness(budget_policy()).run_open_loop(&step_config()).unwrap();
    let b = overload_harness(budget_policy()).run_open_loop(&step_config()).unwrap();
    let oa: Vec<u64> = a.ticks.iter().map(|t| t.offered).collect();
    let ob: Vec<u64> = b.ticks.iter().map(|t| t.offered).collect();
    assert_eq!(oa, ob);
    // Different seed, different draws.
    let data = generate(ScaleFactor(0.001), 0xD5);
    let engine = ShdEngine::new(EngineConfig::default());
    data.load_into(&engine).unwrap();
    let other = Harness::new(
        Arc::new(engine),
        data.profile.clone(),
        BenchmarkConfig { seed: 0xF00D, ..BenchmarkConfig::default() },
    );
    let c = other.run_open_loop(&step_config()).unwrap();
    let oc: Vec<u64> = c.ticks.iter().map(|t| t.offered).collect();
    assert_ne!(oa, oc);
}

#[test]
fn open_loop_rejects_invalid_config_with_typed_error() {
    let _x = exclusive();
    let harness = overload_harness(RetryPolicy::default());
    let bad = OpenLoopConfig { workers: 0, ..step_config() };
    let err = harness.run_open_loop(&bad).unwrap_err();
    assert!(
        matches!(err, hattrick_repro::common::HatError::InvalidConfig(_)),
        "got {err:?}"
    );
    // And the closed-loop client-count validation returns the same typed
    // error instead of panicking (the old driver aborted the process).
    let err = harness.run_point(65, 0).unwrap_err();
    assert!(
        matches!(err, hattrick_repro::common::HatError::InvalidConfig(_)),
        "got {err:?}"
    );
    assert!(err.to_string().contains("64"), "diagnostic names the cap: {err}");
}
