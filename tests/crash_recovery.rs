//! Deterministic crash-recovery harness for the durable WAL (`dwal`)
//! wired through the shared engine.
//!
//! Each scenario drives explicit payment transactions (supplier `S_YTD +=
//! amount`, one HISTORY row per payment, every amount unique) against a
//! `ShdEngine` in `DurabilityMode::Fsync`, injects a crash at a chosen
//! kill-point (or tampers with the segment files directly), reopens the
//! WAL directory, and checks the three durability invariants:
//!
//! 1. **No lost acknowledged commit** — every payment whose `commit()`
//!    returned `Ok` is present after recovery.
//! 2. **No ghost commit** — everything present after recovery was
//!    actually attempted (recovery invents nothing).
//! 3. **Atomicity across recovery** — the sum of supplier YTD deltas
//!    equals the sum of recovered HISTORY amounts (a torn replay of half
//!    a payment would break the equality).
//!
//! Scenarios are seed-parameterized; `HAT_CRASH_SEED=<n>` pins a single
//! seed (the CI matrix fans out over seeds this way). WAL directories
//! live under `target/crash-recovery/` and are kept on failure so the
//! failing seed's evidence can be archived.

use std::path::{Path, PathBuf};

use hattrick_repro::common::ids::{history, supplier, TableId};
use hattrick_repro::common::rng::HatRng;
use hattrick_repro::common::value::{row_from, row_with};
use hattrick_repro::common::{HatError, Money, Value};
use hattrick_repro::engine::{
    DurabilityMode, EngineConfig, HtapEngine, KillPoint, NamedIndex, ShdEngine,
    WalConfig,
};

const NSUPP: u32 = 8;

/// Seeds to run each scenario under. `HAT_CRASH_SEED` pins one (CI runs a
/// matrix over it); the default trio keeps local runs fast but varied.
fn seeds() -> Vec<u64> {
    match std::env::var("HAT_CRASH_SEED") {
        Ok(s) => vec![s.parse().expect("HAT_CRASH_SEED must be an integer")],
        Err(_) => vec![0xA1, 0xB7, 0xC3],
    }
}

/// A fresh WAL directory under `target/` (predictable path for CI
/// artifact collection). Leftovers from a previous run are removed.
fn wal_dir(tag: &str, seed: u64) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("crash-recovery")
        .join(format!("{tag}-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fsync_config(dir: &Path) -> EngineConfig {
    EngineConfig::builder()
        .durability(DurabilityMode::Fsync(WalConfig {
            // Small segments so scenarios cross rotation boundaries.
            segment_bytes: 4096,
            ..WalConfig::new(dir)
        }))
        .build()
}

fn supplier_row(k: u32) -> hattrick_repro::common::Row {
    row_from([
        Value::U32(k),
        Value::from(format!("Supplier#{k:09}")),
        Value::from("addr"),
        Value::from("CITY0"),
        Value::from("CHINA"),
        Value::from("ASIA"),
        Value::from("phone"),
        Value::Money(Money::ZERO),
    ])
}

/// Opens (or recovers) an engine on `dir` and loads the base suppliers on
/// a fresh directory. `finish_load` checkpoints, making the base data
/// durable without logging it.
fn open_engine(dir: &Path, fresh: bool) -> ShdEngine {
    let engine = ShdEngine::try_new(fsync_config(dir)).expect("open engine");
    if fresh {
        let rows: Vec<_> = (1..=NSUPP).map(supplier_row).collect();
        engine.load(TableId::Supplier, &mut rows.into_iter()).unwrap();
        engine.finish_load().unwrap();
    }
    engine
}

/// One payment: supplier YTD += amount, plus a HISTORY row carrying the
/// (unique) amount. Returns Err if the commit was not acknowledged.
fn payment(engine: &ShdEngine, suppkey: u32, amount_cents: i64) -> Result<(), HatError> {
    let mut s = engine.begin();
    let (rid, row) = s
        .lookup_u32(NamedIndex::SupplierPk, suppkey)?
        .expect("supplier exists");
    let ytd = row[supplier::YTD].as_money().expect("typed");
    s.update(
        TableId::Supplier,
        rid,
        row_with(&row, supplier::YTD, Value::Money(ytd + Money::from_cents(amount_cents))),
    )?;
    s.insert(
        TableId::History,
        row_from([
            Value::U64(amount_cents as u64),
            Value::U32(suppkey),
            Value::Money(Money::from_cents(amount_cents)),
        ]),
    )?;
    s.commit().map(|_| ())
}

/// The recovered HISTORY amounts, sorted.
fn recovered_amounts(engine: &ShdEngine) -> Vec<i64> {
    let k = engine.kernel();
    let ts = k.oracle.read_ts();
    let mut amounts = Vec::new();
    k.db.store(TableId::History).scan(ts, |_, row| {
        amounts.push(row[history::AMOUNT].as_money().expect("typed").cents());
    });
    amounts.sort_unstable();
    amounts
}

/// Total supplier YTD (equals the sum of applied payment amounts).
fn total_ytd(engine: &ShdEngine) -> i64 {
    let k = engine.kernel();
    let ts = k.oracle.read_ts();
    let mut sum = 0i64;
    k.db.store(TableId::Supplier).scan(ts, |_, row| {
        sum += row[supplier::YTD].as_money().expect("typed").cents();
    });
    sum
}

/// Outcome of a crash scenario's traffic phase.
struct Traffic {
    /// Amounts of payments whose commit returned Ok.
    acked: Vec<i64>,
    /// Amounts of every payment attempted (acked or not).
    attempted: Vec<i64>,
}

/// Runs `pre` acknowledged payments, arms `kill`, then keeps paying until
/// the WAL crash surfaces (bounded). Unique amounts index the attempts.
fn drive_until_crash(engine: &ShdEngine, seed: u64, kill: KillPoint) -> Traffic {
    let mut rng = HatRng::seeded(seed);
    let mut acked = Vec::new();
    let mut attempted = Vec::new();
    let mut amount = 10_000 + (seed as i64 % 97) * 1_000;
    let pre = 8 + (seed % 5) as usize;
    for _ in 0..pre {
        amount += 1;
        let supp = rng.range_u32(1, NSUPP);
        attempted.push(amount);
        payment(engine, supp, amount).expect("pre-kill payments are acknowledged");
        acked.push(amount);
    }
    engine
        .kernel()
        .durability
        .wal()
        .expect("fsync mode")
        .arm_kill(kill);
    let mut crashed = false;
    for _ in 0..64 {
        amount += 1;
        let supp = rng.range_u32(1, NSUPP);
        attempted.push(amount);
        match payment(engine, supp, amount) {
            Ok(()) => acked.push(amount),
            Err(e) => {
                assert!(
                    matches!(e, HatError::EngineStopped),
                    "crash surfaces as EngineStopped, got {e}"
                );
                crashed = true;
                break;
            }
        }
    }
    assert!(crashed, "armed kill-point must fire within the attempt budget");
    assert!(
        engine.kernel().durability.wal().unwrap().is_crashed(),
        "WAL records the crash"
    );
    Traffic { acked, attempted }
}

/// Core assertions after reopening the directory. `min_replay` is the
/// smallest acceptable WAL replay count — the full acked set when no
/// checkpoint ran after load, less when one bounded the tail.
fn assert_recovered(engine: &ShdEngine, traffic: &Traffic, scenario: &str, min_replay: u64) {
    let recovered = recovered_amounts(engine);
    for a in &traffic.acked {
        assert!(
            recovered.contains(a),
            "{scenario}: acknowledged payment {a} lost by recovery"
        );
    }
    for r in &recovered {
        assert!(
            traffic.attempted.contains(r),
            "{scenario}: recovery surfaced ghost payment {r}"
        );
    }
    assert_eq!(
        total_ytd(engine),
        recovered.iter().sum::<i64>(),
        "{scenario}: supplier YTD diverged from history (torn payment)"
    );
    let stats = engine.stats();
    assert!(
        stats.recovery_replayed_records >= min_replay,
        "{scenario}: replay count {} below expected {min_replay}",
        stats.recovery_replayed_records,
    );
}

/// Last WAL segment file in `dir` (highest first-LSN).
fn last_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("wal dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "seg")
                && std::fs::metadata(p).is_ok_and(|m| m.len() > 16)
        })
        .collect();
    segs.sort();
    segs.pop().expect("at least one non-empty segment")
}

#[test]
fn kill_before_flush_loses_only_unacknowledged_commits() {
    for seed in seeds() {
        let dir = wal_dir("before-flush", seed);
        let traffic = {
            let engine = open_engine(&dir, true);
            drive_until_crash(&engine, seed, KillPoint::BeforeFlush)
        };
        let engine = open_engine(&dir, false);
        assert_recovered(&engine, &traffic, "before-flush", traffic.acked.len() as u64);
        // The crashing payment was never acknowledged, so recovery may
        // legitimately drop it — but everything acked must be exact.
        assert_eq!(
            recovered_amounts(&engine),
            {
                let mut v = traffic.acked.clone();
                v.sort_unstable();
                v
            },
            "BeforeFlush discards exactly the unflushed batch (seed {seed})"
        );
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_after_flush_preserves_every_acknowledged_commit() {
    for seed in seeds() {
        let dir = wal_dir("after-flush", seed);
        let traffic = {
            let engine = open_engine(&dir, true);
            drive_until_crash(&engine, seed, KillPoint::AfterFlush)
        };
        let engine = open_engine(&dir, false);
        assert_recovered(&engine, &traffic, "after-flush", traffic.acked.len() as u64);
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_tail_after_torn_flush_is_truncated_and_counted() {
    for seed in seeds() {
        let dir = wal_dir("torn", seed);
        let traffic = {
            let engine = open_engine(&dir, true);
            drive_until_crash(&engine, seed, KillPoint::TornFlush)
        };
        // TornFlush wrote the final batch without fsync; shear the last
        // segment mid-frame to model the torn sector a real power cut
        // leaves behind.
        let seg = last_segment(&dir);
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        f.sync_all().unwrap();
        drop(f);

        let engine = open_engine(&dir, false);
        assert_recovered(&engine, &traffic, "torn-tail", traffic.acked.len() as u64);
        assert!(
            engine.stats().torn_tail_truncations >= 1,
            "the sheared record is truncated and counted (seed {seed})"
        );
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn bit_flip_in_sealed_record_fails_with_checksum_mismatch() {
    for seed in seeds() {
        let dir = wal_dir("bitflip", seed);
        {
            // Clean run, clean shutdown: all records complete and fsynced.
            let engine = open_engine(&dir, true);
            let mut rng = HatRng::seeded(seed);
            for i in 0..12i64 {
                payment(&engine, rng.range_u32(1, NSUPP), 20_000 + i).unwrap();
            }
        }
        // Silent corruption: flip one bit inside the last record's payload.
        let seg = last_segment(&dir);
        let mut bytes = std::fs::read(&seg).unwrap();
        let idx = bytes.len() - 2;
        bytes[idx] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();

        let err = match ShdEngine::try_new(fsync_config(&dir)) {
            Ok(_) => panic!("corruption must be detected (seed {seed})"),
            Err(e) => e,
        };
        assert!(
            matches!(err, HatError::ChecksumMismatch { .. }),
            "bit flip must be a checksum mismatch, got {err} (seed {seed})"
        );
        assert!(!err.is_retryable(), "corruption needs an operator, not a retry");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn mid_checkpoint_kill_leaves_recovery_on_the_wal_tail() {
    for seed in seeds() {
        let dir = wal_dir("mid-ckpt", seed);
        let traffic = {
            let engine = open_engine(&dir, true);
            let mut rng = HatRng::seeded(seed);
            let mut acked = Vec::new();
            let mut amount = 30_000 + (seed as i64 % 89);
            for _ in 0..10 {
                amount += 1;
                payment(&engine, rng.range_u32(1, NSUPP), amount).unwrap();
                acked.push(amount);
            }
            let wal = engine.kernel().durability.wal().unwrap();
            wal.arm_kill(KillPoint::MidCheckpoint);
            let err = engine.checkpoint().expect_err("checkpoint dies mid-write");
            assert!(matches!(err, HatError::EngineStopped), "got {err}");
            Traffic { attempted: acked.clone(), acked }
        };
        // The half-written checkpoint must be invisible: recovery replays
        // the full WAL tail from the load-time checkpoint instead.
        let engine = open_engine(&dir, false);
        assert_recovered(&engine, &traffic, "mid-checkpoint", traffic.acked.len() as u64);
        assert_eq!(
            recovered_amounts(&engine).len(),
            traffic.acked.len(),
            "every acked payment replayed (seed {seed})"
        );
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_is_idempotent_across_reopens() {
    for seed in seeds() {
        let dir = wal_dir("reopen", seed);
        let traffic = {
            let engine = open_engine(&dir, true);
            drive_until_crash(&engine, seed, KillPoint::AfterFlush)
        };
        let first = {
            let engine = open_engine(&dir, false);
            assert_recovered(&engine, &traffic, "reopen-1", traffic.acked.len() as u64);
            (recovered_amounts(&engine), total_ytd(&engine))
        };
        // Reopening again (clean shutdown in between) reaches the exact
        // same state: recovery neither re-applies nor drops anything.
        let engine = open_engine(&dir, false);
        assert_eq!(first.0, recovered_amounts(&engine), "seed {seed}");
        assert_eq!(first.1, total_ytd(&engine), "seed {seed}");
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn periodic_checkpoints_bound_replay_and_prune_segments() {
    for seed in seeds() {
        let dir = wal_dir("periodic", seed);
        let traffic = {
            let engine = open_engine(&dir, true);
            let mut rng = HatRng::seeded(seed);
            let mut acked = Vec::new();
            let mut amount = 40_000 + (seed as i64 % 83);
            for _ in 0..30 {
                amount += 1;
                payment(&engine, rng.range_u32(1, NSUPP), amount).unwrap();
                acked.push(amount);
            }
            // Manual checkpoint mid-stream, then more traffic.
            engine.checkpoint().unwrap();
            for _ in 0..10 {
                amount += 1;
                payment(&engine, rng.range_u32(1, NSUPP), amount).unwrap();
                acked.push(amount);
            }
            Traffic { attempted: acked.clone(), acked }
        };
        let engine = open_engine(&dir, false);
        assert_recovered(&engine, &traffic, "periodic", 1);
        // Replay skipped the checkpointed prefix: well under the full 40.
        let stats = engine.stats();
        assert!(
            stats.recovery_replayed_records <= 10,
            "checkpoint bounds replay to the tail, replayed {} (seed {seed})",
            stats.recovery_replayed_records
        );
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
