//! Property-based tests on the core data structures and benchmark math.
//!
//! Formerly driven by proptest; now driven by a seeded `SmallRng` so the
//! suite runs in the offline build environment. Each property executes a
//! fixed number of randomized cases from a fixed seed, so failures are
//! deterministic and reproducible: rerun with the printed seed to replay.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::ops::Bound;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hattrick_repro::bench::freshness::{cdf, score_query, CommitRegistry, FreshnessAgg};
use hattrick_repro::bench::frontier::{Frontier, FrontierPoint};
use hattrick_repro::common::dates::{add_days, CalendarDate, FIRST_DATE, LAST_DATE};
use hattrick_repro::common::Money;
use hattrick_repro::storage::bptree::BPlusTree;
use hattrick_repro::storage::colstore::{DictColumn, RleU32};

const BASE_SEED: u64 = 0x4a77_5ec0_0d15_ea5e;

/// Runs `case` for `cases` deterministic seeds derived from [`BASE_SEED`].
fn property(name: &str, cases: u64, mut case: impl FnMut(&mut SmallRng)) {
    for i in 0..cases {
        let seed = BASE_SEED ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SmallRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property {name} failed on case {i} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

// ---------------------------------------------------------------------------
// B+tree vs BTreeMap model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
}

fn tree_op(rng: &mut SmallRng) -> TreeOp {
    match rng.gen_range(0..4u32) {
        0 => TreeOp::Insert(rng.gen::<u16>() % 512, rng.gen::<u32>()),
        1 => TreeOp::Remove(rng.gen::<u16>() % 512),
        2 => TreeOp::Get(rng.gen::<u16>() % 512),
        _ => TreeOp::Range(rng.gen::<u16>() % 512, rng.gen::<u16>() % 512),
    }
}

#[test]
fn bptree_behaves_like_btreemap() {
    property("bptree_behaves_like_btreemap", 64, |rng| {
        let order = rng.gen_range(4usize..32);
        let n_ops = rng.gen_range(1usize..400);
        let mut tree = BPlusTree::with_order(order);
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for _ in 0..n_ops {
            match tree_op(rng) {
                TreeOp::Insert(k, v) => {
                    assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    assert_eq!(tree.remove(&k), model.remove(&k));
                }
                TreeOp::Get(k) => {
                    assert_eq!(tree.get(&k), model.get(&k));
                }
                TreeOp::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got = tree.range_values(&lo, &hi);
                    let want: Vec<u32> = model.range(lo..=hi).map(|(_, v)| *v).collect();
                    assert_eq!(got, want);
                }
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), model.len());
    });
}

#[test]
fn bptree_range_bounds_agree_with_model() {
    property("bptree_range_bounds_agree_with_model", 64, |rng| {
        let n_keys = rng.gen_range(0usize..200);
        let keys: BTreeSet<u16> = (0..n_keys).map(|_| rng.gen::<u16>()).collect();
        let mut tree = BPlusTree::with_order(8);
        for &k in &keys {
            tree.insert(k, k);
        }
        let (mut lo, mut hi) = (rng.gen::<u16>(), rng.gen::<u16>());
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let (inc_lo, inc_hi) = (rng.gen_bool(0.5), rng.gen_bool(0.5));
        let lb = if inc_lo { Bound::Included(&lo) } else { Bound::Excluded(&lo) };
        let ub = if inc_hi { Bound::Included(&hi) } else { Bound::Excluded(&hi) };
        let mut got = Vec::new();
        tree.range(lb, ub, |k, _| {
            got.push(*k);
            true
        });
        let want: Vec<u16> = keys
            .iter()
            .copied()
            .filter(|k| {
                (if inc_lo { *k >= lo } else { *k > lo })
                    && (if inc_hi { *k <= hi } else { *k < hi })
            })
            .collect();
        assert_eq!(got, want);
    });
}

// ---------------------------------------------------------------------------
// Columnar encodings
// ---------------------------------------------------------------------------

#[test]
fn rle_roundtrips() {
    property("rle_roundtrips", 64, |rng| {
        let n = rng.gen_range(0usize..500);
        let values: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..16)).collect();
        let rle = RleU32::encode(&values);
        assert_eq!(rle.len(), values.len());
        assert_eq!(rle.iter().collect::<Vec<_>>(), values.clone());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(rle.get(i), v);
        }
        // Runs never exceed distinct transitions + 1.
        let transitions = values.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(rle.run_count() <= transitions + 1);
    });
}

#[test]
fn dict_roundtrips() {
    property("dict_roundtrips", 64, |rng| {
        let n = rng.gen_range(0usize..200);
        let words: Vec<String> = (0..n)
            .map(|_| {
                let len = rng.gen_range(1usize..=4);
                (0..len).map(|_| (b'a' + rng.gen_range(0u8..5)) as char).collect()
            })
            .collect();
        let arcs: Vec<Arc<str>> = words.iter().map(|w| Arc::from(w.as_str())).collect();
        let dict = DictColumn::encode(arcs.iter());
        assert_eq!(dict.len(), words.len());
        for (i, w) in words.iter().enumerate() {
            assert_eq!(dict.get(i), w.as_str());
        }
        let distinct: HashSet<&str> = words.iter().map(|s| s.as_str()).collect();
        assert_eq!(dict.cardinality(), distinct.len());
    });
}

// ---------------------------------------------------------------------------
// Money
// ---------------------------------------------------------------------------

#[test]
fn money_addition_is_associative_and_invertible() {
    property("money_addition_is_associative_and_invertible", 256, |rng| {
        let a = rng.gen_range(-1_000_000_000i64..1_000_000_000);
        let b = rng.gen_range(-1_000_000_000i64..1_000_000_000);
        let c = rng.gen_range(-1_000_000_000i64..1_000_000_000);
        let (ma, mb, mc) = (Money::from_cents(a), Money::from_cents(b), Money::from_cents(c));
        assert_eq!((ma + mb) + mc, ma + (mb + mc));
        assert_eq!(ma + mb - mb, ma);
        assert_eq!(-(-ma), ma);
    });
}

#[test]
fn money_pct_bounds() {
    property("money_pct_bounds", 256, |rng| {
        let cents = rng.gen_range(0i64..10_000_000);
        let pct = rng.gen_range(0i64..=100);
        let m = Money::from_cents(cents);
        let part = m.pct(pct);
        assert!(part.cents() <= m.cents());
        assert!(part.cents() >= 0);
        // pct(100) is exact.
        assert_eq!(m.pct(100), m);
        assert_eq!(m.pct(0), Money::ZERO);
    });
}

// ---------------------------------------------------------------------------
// Dates
// ---------------------------------------------------------------------------

#[test]
fn date_ordinals_are_dense_and_monotone() {
    property("date_ordinals_are_dense_and_monotone", 256, |rng| {
        let offset = rng.gen_range(0u32..2556);
        let key = add_days(FIRST_DATE, offset);
        let d = CalendarDate::from_key(key);
        assert_eq!(d.ordinal(), offset);
        assert!((FIRST_DATE..=LAST_DATE).contains(&key));
        assert_eq!(d.key(), key);
    });
}

// ---------------------------------------------------------------------------
// Frontier math
// ---------------------------------------------------------------------------

#[test]
fn pareto_frontier_is_minimal_and_complete() {
    property("pareto_frontier_is_minimal_and_complete", 64, |rng| {
        let n = rng.gen_range(1usize..60);
        let pts: Vec<FrontierPoint> = (0..n)
            .map(|_| FrontierPoint {
                t: rng.gen::<f64>() * 1000.0,
                a: rng.gen::<f64>() * 1000.0,
                t_clients: 0,
                a_clients: 0,
            })
            .collect();
        let f = Frontier::from_points(pts.clone());
        // 1. No frontier point is dominated by any input point.
        for fp in &f.points {
            for p in &pts {
                assert!(!p.dominates(fp), "{p:?} dominates frontier {fp:?}");
            }
        }
        // 2. Every input point is dominated by or equal to some frontier point.
        for p in &pts {
            let covered = f.points.iter().any(|fp| fp.t >= p.t && fp.a >= p.a);
            assert!(covered);
        }
        // 3. Interpolation stays within the bounding box.
        for i in 0..=10 {
            let t = f.x_t * i as f64 / 10.0;
            let a = f.a_at(t);
            assert!(a <= f.x_a + 1e-9);
            assert!(a >= 0.0);
        }
        // 4. A frontier always envelops itself.
        assert!(f.envelops(&f, 20));
    });
}

// ---------------------------------------------------------------------------
// Freshness math
// ---------------------------------------------------------------------------

#[test]
fn freshness_scores_are_nonnegative_and_monotone_in_start_time() {
    property("freshness_scores_monotone", 128, |rng| {
        let commit_gap = rng.gen_range(1u64..1_000_000_000);
        let seen = rng.gen_range(0u64..5);
        let registry = CommitRegistry::new(&[1]);
        // Client 0 commits txns 1..=6, spaced commit_gap apart.
        for i in 1..=6u64 {
            registry.record(0, i, i * commit_gap);
        }
        let start_a = 3 * commit_gap + 1;
        let start_b = 6 * commit_gap + 2;
        let fa = score_query(start_a, &[(0, seen)], &registry);
        let fb = score_query(start_b, &[(0, seen)], &registry);
        assert!(fa >= 0.0);
        assert!(fb >= fa, "later start can only be staler for same snapshot");
        // Seeing everything committed before start means zero.
        let all_seen = score_query(start_b, &[(0, 6)], &registry);
        assert_eq!(all_seen, 0.0);
    });
}

#[test]
fn freshness_aggregation_is_order_invariant() {
    property("freshness_aggregation_is_order_invariant", 128, |rng| {
        let n = rng.gen_range(1usize..100);
        let mut samples: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 10.0).collect();
        let a = FreshnessAgg::from_samples(&samples);
        samples.reverse();
        let b = FreshnessAgg::from_samples(&samples);
        assert!((a.mean - b.mean).abs() < 1e-9);
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.max, b.max);
        assert!(a.p50 <= a.p95 && a.p95 <= a.p99 && a.p99 <= a.max);
        let points = cdf(&samples);
        assert_eq!(points.len(), samples.len());
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
    });
}
