//! Property-based tests (proptest) on the core data structures and
//! benchmark math.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use proptest::prelude::*;

use hattrick_repro::bench::freshness::{cdf, score_query, CommitRegistry, FreshnessAgg};
use hattrick_repro::bench::frontier::{Frontier, FrontierPoint};
use hattrick_repro::common::dates::{add_days, CalendarDate, FIRST_DATE, LAST_DATE};
use hattrick_repro::common::Money;
use hattrick_repro::storage::bptree::BPlusTree;
use hattrick_repro::storage::colstore::{DictColumn, RleU32};

// ---------------------------------------------------------------------------
// B+tree vs BTreeMap model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| TreeOp::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| TreeOp::Remove(k % 512)),
        any::<u16>().prop_map(|k| TreeOp::Get(k % 512)),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| TreeOp::Range(a % 512, b % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bptree_behaves_like_btreemap(ops in prop::collection::vec(tree_op(), 1..400),
                                    order in 4usize..32) {
        let mut tree = BPlusTree::with_order(order);
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k));
                }
                TreeOp::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got = tree.range_values(&lo, &hi);
                    let want: Vec<u32> = model.range(lo..=hi).map(|(_, v)| *v).collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len());
    }

    #[test]
    fn bptree_range_bounds_agree_with_model(
        keys in prop::collection::btree_set(any::<u16>(), 0..200),
        lo in any::<u16>(), hi in any::<u16>(),
        inc_lo in any::<bool>(), inc_hi in any::<bool>(),
    ) {
        let mut tree = BPlusTree::with_order(8);
        for &k in &keys {
            tree.insert(k, k);
        }
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let lb = if inc_lo { Bound::Included(&lo) } else { Bound::Excluded(&lo) };
        let ub = if inc_hi { Bound::Included(&hi) } else { Bound::Excluded(&hi) };
        let mut got = Vec::new();
        tree.range(lb, ub, |k, _| { got.push(*k); true });
        let want: Vec<u16> = keys.iter().copied().filter(|k| {
            (if inc_lo { *k >= lo } else { *k > lo })
                && (if inc_hi { *k <= hi } else { *k < hi })
        }).collect();
        prop_assert_eq!(got, want);
    }

    // -----------------------------------------------------------------------
    // Columnar encodings
    // -----------------------------------------------------------------------

    #[test]
    fn rle_roundtrips(values in prop::collection::vec(0u32..16, 0..500)) {
        let rle = RleU32::encode(&values);
        prop_assert_eq!(rle.len(), values.len());
        prop_assert_eq!(rle.iter().collect::<Vec<_>>(), values.clone());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(rle.get(i), v);
        }
        // Runs never exceed distinct transitions + 1.
        let transitions = values.windows(2).filter(|w| w[0] != w[1]).count();
        prop_assert!(rle.run_count() <= transitions + 1);
    }

    #[test]
    fn dict_roundtrips(words in prop::collection::vec("[a-e]{1,4}", 0..200)) {
        let arcs: Vec<Arc<str>> = words.iter().map(|w| Arc::from(w.as_str())).collect();
        let dict = DictColumn::encode(arcs.iter());
        prop_assert_eq!(dict.len(), words.len());
        for (i, w) in words.iter().enumerate() {
            prop_assert_eq!(dict.get(i), w.as_str());
        }
        let distinct: std::collections::HashSet<&str> =
            words.iter().map(|s| s.as_str()).collect();
        prop_assert_eq!(dict.cardinality(), distinct.len());
    }

    // -----------------------------------------------------------------------
    // Money
    // -----------------------------------------------------------------------

    #[test]
    fn money_addition_is_associative_and_invertible(
        a in -1_000_000_000i64..1_000_000_000,
        b in -1_000_000_000i64..1_000_000_000,
        c in -1_000_000_000i64..1_000_000_000,
    ) {
        let (ma, mb, mc) = (Money::from_cents(a), Money::from_cents(b), Money::from_cents(c));
        prop_assert_eq!((ma + mb) + mc, ma + (mb + mc));
        prop_assert_eq!(ma + mb - mb, ma);
        prop_assert_eq!(-(-ma), ma);
    }

    #[test]
    fn money_pct_bounds(cents in 0i64..10_000_000, pct in 0i64..=100) {
        let m = Money::from_cents(cents);
        let part = m.pct(pct);
        prop_assert!(part.cents() <= m.cents());
        prop_assert!(part.cents() >= 0);
        // pct(100) is exact.
        prop_assert_eq!(m.pct(100), m);
        prop_assert_eq!(m.pct(0), Money::ZERO);
    }

    // -----------------------------------------------------------------------
    // Dates
    // -----------------------------------------------------------------------

    #[test]
    fn date_ordinals_are_dense_and_monotone(offset in 0u32..2556) {
        let key = add_days(FIRST_DATE, offset);
        let d = CalendarDate::from_key(key);
        prop_assert_eq!(d.ordinal(), offset);
        prop_assert!((FIRST_DATE..=LAST_DATE).contains(&key));
        prop_assert_eq!(d.key(), key);
    }

    // -----------------------------------------------------------------------
    // Frontier math
    // -----------------------------------------------------------------------

    #[test]
    fn pareto_frontier_is_minimal_and_complete(
        raw in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 1..60)
    ) {
        let pts: Vec<FrontierPoint> = raw
            .iter()
            .map(|&(t, a)| FrontierPoint { t, a, t_clients: 0, a_clients: 0 })
            .collect();
        let f = Frontier::from_points(pts.clone());
        // 1. No frontier point is dominated by any input point.
        for fp in &f.points {
            for p in &pts {
                prop_assert!(!p.dominates(fp), "{:?} dominates frontier {:?}", p, fp);
            }
        }
        // 2. Every input point is dominated by or equal to some frontier point.
        for p in &pts {
            let covered = f.points.iter().any(|fp| fp.t >= p.t && fp.a >= p.a);
            prop_assert!(covered);
        }
        // 3. Interpolation stays within the bounding box.
        for i in 0..=10 {
            let t = f.x_t * i as f64 / 10.0;
            let a = f.a_at(t);
            prop_assert!(a <= f.x_a + 1e-9);
            prop_assert!(a >= 0.0);
        }
        // 4. A frontier always envelops itself.
        prop_assert!(f.envelops(&f, 20));
    }

    // -----------------------------------------------------------------------
    // Freshness math
    // -----------------------------------------------------------------------

    #[test]
    fn freshness_scores_are_nonnegative_and_monotone_in_start_time(
        commit_gap in 1u64..1_000_000_000,
        seen in 0u64..5,
    ) {
        let registry = CommitRegistry::new(&[1]);
        // Client 0 commits txns 1..=6, spaced commit_gap apart.
        for i in 1..=6u64 {
            registry.record(0, i, i * commit_gap);
        }
        let start_a = 3 * commit_gap + 1;
        let start_b = 6 * commit_gap + 2;
        let fa = score_query(start_a, &[(0, seen)], &registry);
        let fb = score_query(start_b, &[(0, seen)], &registry);
        prop_assert!(fa >= 0.0);
        prop_assert!(fb >= fa, "later start can only be staler for same snapshot");
        // Seeing everything committed before start means zero.
        let all_seen = score_query(start_b, &[(0, 6)], &registry);
        prop_assert_eq!(all_seen, 0.0);
    }

    #[test]
    fn freshness_aggregation_is_order_invariant(
        mut samples in prop::collection::vec(0.0f64..10.0, 1..100)
    ) {
        let a = FreshnessAgg::from_samples(&samples);
        samples.reverse();
        let b = FreshnessAgg::from_samples(&samples);
        prop_assert!((a.mean - b.mean).abs() < 1e-9);
        prop_assert_eq!(a.p99, b.p99);
        prop_assert_eq!(a.max, b.max);
        prop_assert!(a.p50 <= a.p95 && a.p95 <= a.p99 && a.p99 <= a.max);
        let points = cdf(&samples);
        prop_assert_eq!(points.len(), samples.len());
        prop_assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
