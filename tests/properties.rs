//! Property-based tests on the core data structures and benchmark math.
//!
//! Formerly driven by proptest; now driven by a seeded `SmallRng` so the
//! suite runs in the offline build environment. Each property executes a
//! fixed number of randomized cases from a fixed seed, so failures are
//! deterministic and reproducible: rerun with the printed seed to replay.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::ops::Bound;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hattrick_repro::bench::freshness::{cdf, score_query, CommitRegistry, FreshnessAgg};
use hattrick_repro::bench::frontier::{Frontier, FrontierPoint};
use hattrick_repro::bench::harness::{RetryBudget, RetryBudgetConfig, RetryPolicy};
use hattrick_repro::common::dates::{add_days, CalendarDate, FIRST_DATE, LAST_DATE};
use hattrick_repro::common::rng::HatRng;
use hattrick_repro::common::telemetry::HistogramSnapshot;
use hattrick_repro::common::Money;
use hattrick_repro::storage::bptree::BPlusTree;
use hattrick_repro::storage::colstore::{DictColumn, PackedU32, RleU32};

const BASE_SEED: u64 = 0x4a77_5ec0_0d15_ea5e;

/// Runs `case` for `cases` deterministic seeds derived from [`BASE_SEED`].
fn property(name: &str, cases: u64, mut case: impl FnMut(&mut SmallRng)) {
    for i in 0..cases {
        let seed = BASE_SEED ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SmallRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property {name} failed on case {i} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

// ---------------------------------------------------------------------------
// B+tree vs BTreeMap model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
}

fn tree_op(rng: &mut SmallRng) -> TreeOp {
    match rng.gen_range(0..4u32) {
        0 => TreeOp::Insert(rng.gen::<u16>() % 512, rng.gen::<u32>()),
        1 => TreeOp::Remove(rng.gen::<u16>() % 512),
        2 => TreeOp::Get(rng.gen::<u16>() % 512),
        _ => TreeOp::Range(rng.gen::<u16>() % 512, rng.gen::<u16>() % 512),
    }
}

#[test]
fn bptree_behaves_like_btreemap() {
    property("bptree_behaves_like_btreemap", 64, |rng| {
        let order = rng.gen_range(4usize..32);
        let n_ops = rng.gen_range(1usize..400);
        let mut tree = BPlusTree::with_order(order);
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for _ in 0..n_ops {
            match tree_op(rng) {
                TreeOp::Insert(k, v) => {
                    assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    assert_eq!(tree.remove(&k), model.remove(&k));
                }
                TreeOp::Get(k) => {
                    assert_eq!(tree.get(&k), model.get(&k));
                }
                TreeOp::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got = tree.range_values(&lo, &hi);
                    let want: Vec<u32> = model.range(lo..=hi).map(|(_, v)| *v).collect();
                    assert_eq!(got, want);
                }
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), model.len());
    });
}

#[test]
fn bptree_range_bounds_agree_with_model() {
    property("bptree_range_bounds_agree_with_model", 64, |rng| {
        let n_keys = rng.gen_range(0usize..200);
        let keys: BTreeSet<u16> = (0..n_keys).map(|_| rng.gen::<u16>()).collect();
        let mut tree = BPlusTree::with_order(8);
        for &k in &keys {
            tree.insert(k, k);
        }
        let (mut lo, mut hi) = (rng.gen::<u16>(), rng.gen::<u16>());
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let (inc_lo, inc_hi) = (rng.gen_bool(0.5), rng.gen_bool(0.5));
        let lb = if inc_lo { Bound::Included(&lo) } else { Bound::Excluded(&lo) };
        let ub = if inc_hi { Bound::Included(&hi) } else { Bound::Excluded(&hi) };
        let mut got = Vec::new();
        tree.range(lb, ub, |k, _| {
            got.push(*k);
            true
        });
        let want: Vec<u16> = keys
            .iter()
            .copied()
            .filter(|k| {
                (if inc_lo { *k >= lo } else { *k > lo })
                    && (if inc_hi { *k <= hi } else { *k < hi })
            })
            .collect();
        assert_eq!(got, want);
    });
}

// ---------------------------------------------------------------------------
// Columnar encodings
// ---------------------------------------------------------------------------

#[test]
fn rle_roundtrips() {
    property("rle_roundtrips", 64, |rng| {
        let n = rng.gen_range(0usize..500);
        let values: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..16)).collect();
        let rle = RleU32::encode(&values);
        assert_eq!(rle.len(), values.len());
        assert_eq!(rle.iter().collect::<Vec<_>>(), values.clone());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(rle.get(i), v);
        }
        // Runs never exceed distinct transitions + 1.
        let transitions = values.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(rle.run_count() <= transitions + 1);
    });
}

#[test]
fn dict_roundtrips() {
    property("dict_roundtrips", 64, |rng| {
        let n = rng.gen_range(0usize..200);
        let words: Vec<String> = (0..n)
            .map(|_| {
                let len = rng.gen_range(1usize..=4);
                (0..len).map(|_| (b'a' + rng.gen_range(0u8..5)) as char).collect()
            })
            .collect();
        let arcs: Vec<Arc<str>> = words.iter().map(|w| Arc::from(w.as_str())).collect();
        let dict = DictColumn::encode(arcs.iter());
        assert_eq!(dict.len(), words.len());
        for (i, w) in words.iter().enumerate() {
            assert_eq!(dict.get(i), w.as_str());
        }
        let distinct: HashSet<&str> = words.iter().map(|s| s.as_str()).collect();
        assert_eq!(dict.cardinality(), distinct.len());
    });
}

#[test]
fn packed_u32_roundtrips_at_every_width() {
    property("packed_u32_roundtrips", 64, |rng| {
        // Bound values to a random bit width so every width (including
        // word-straddling ones like 7, 13, 28) gets exercised.
        let bits = rng.gen_range(1u32..=32);
        let n = rng.gen_range(0usize..500);
        let mask = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
        let values: Vec<u32> = (0..n).map(|_| rng.gen::<u32>() & mask).collect();
        let packed = PackedU32::encode(&values);
        assert_eq!(packed.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(packed.get(i), v, "bits={bits} i={i}");
        }
        // The chosen width is exactly wide enough for the largest value.
        let max = values.iter().copied().max().unwrap_or(0);
        let need = if max == 0 { 1 } else { 32 - max.leading_zeros() };
        assert_eq!(packed.bits(), need.max(1));
    });
}

#[test]
fn rle_cursor_agrees_with_get_on_random_walks() {
    property("rle_cursor_agrees_with_get", 64, |rng| {
        let n = rng.gen_range(1usize..500);
        let values: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..8)).collect();
        let rle = RleU32::encode(&values);
        // A jumpy access pattern (forward skips and backward re-seeks)
        // must read the same values as random access.
        let mut cursor = rle.cursor();
        let mut idx = 0usize;
        for _ in 0..200 {
            assert_eq!(cursor.value_at(&rle, idx), rle.get(idx), "idx={idx}");
            idx = if rng.gen_bool(0.7) {
                (idx + rng.gen_range(1usize..16)) % n
            } else {
                rng.gen_range(0usize..n)
            };
        }
    });
}

// ---------------------------------------------------------------------------
// Money
// ---------------------------------------------------------------------------

#[test]
fn money_addition_is_associative_and_invertible() {
    property("money_addition_is_associative_and_invertible", 256, |rng| {
        let a = rng.gen_range(-1_000_000_000i64..1_000_000_000);
        let b = rng.gen_range(-1_000_000_000i64..1_000_000_000);
        let c = rng.gen_range(-1_000_000_000i64..1_000_000_000);
        let (ma, mb, mc) = (Money::from_cents(a), Money::from_cents(b), Money::from_cents(c));
        assert_eq!((ma + mb) + mc, ma + (mb + mc));
        assert_eq!(ma + mb - mb, ma);
        assert_eq!(-(-ma), ma);
    });
}

#[test]
fn money_pct_bounds() {
    property("money_pct_bounds", 256, |rng| {
        let cents = rng.gen_range(0i64..10_000_000);
        let pct = rng.gen_range(0i64..=100);
        let m = Money::from_cents(cents);
        let part = m.pct(pct);
        assert!(part.cents() <= m.cents());
        assert!(part.cents() >= 0);
        // pct(100) is exact.
        assert_eq!(m.pct(100), m);
        assert_eq!(m.pct(0), Money::ZERO);
    });
}

// ---------------------------------------------------------------------------
// Dates
// ---------------------------------------------------------------------------

#[test]
fn date_ordinals_are_dense_and_monotone() {
    property("date_ordinals_are_dense_and_monotone", 256, |rng| {
        let offset = rng.gen_range(0u32..2556);
        let key = add_days(FIRST_DATE, offset);
        let d = CalendarDate::from_key(key);
        assert_eq!(d.ordinal(), offset);
        assert!((FIRST_DATE..=LAST_DATE).contains(&key));
        assert_eq!(d.key(), key);
    });
}

// ---------------------------------------------------------------------------
// Frontier math
// ---------------------------------------------------------------------------

#[test]
fn pareto_frontier_is_minimal_and_complete() {
    property("pareto_frontier_is_minimal_and_complete", 64, |rng| {
        let n = rng.gen_range(1usize..60);
        let pts: Vec<FrontierPoint> = (0..n)
            .map(|_| FrontierPoint {
                t: rng.gen::<f64>() * 1000.0,
                a: rng.gen::<f64>() * 1000.0,
                t_clients: 0,
                a_clients: 0,
            })
            .collect();
        let f = Frontier::from_points(pts.clone());
        // 1. No frontier point is dominated by any input point.
        for fp in &f.points {
            for p in &pts {
                assert!(!p.dominates(fp), "{p:?} dominates frontier {fp:?}");
            }
        }
        // 2. Every input point is dominated by or equal to some frontier point.
        for p in &pts {
            let covered = f.points.iter().any(|fp| fp.t >= p.t && fp.a >= p.a);
            assert!(covered);
        }
        // 3. Interpolation stays within the bounding box.
        for i in 0..=10 {
            let t = f.x_t * i as f64 / 10.0;
            let a = f.a_at(t);
            assert!(a <= f.x_a + 1e-9);
            assert!(a >= 0.0);
        }
        // 4. A frontier always envelops itself.
        assert!(f.envelops(&f, 20));
    });
}

// ---------------------------------------------------------------------------
// Freshness math
// ---------------------------------------------------------------------------

#[test]
fn freshness_scores_are_nonnegative_and_monotone_in_start_time() {
    property("freshness_scores_monotone", 128, |rng| {
        let commit_gap = rng.gen_range(1u64..1_000_000_000);
        let seen = rng.gen_range(0u64..5);
        let registry = CommitRegistry::new(&[1]);
        // Client 0 commits txns 1..=6, spaced commit_gap apart.
        for i in 1..=6u64 {
            registry.record(0, i, i * commit_gap);
        }
        let start_a = 3 * commit_gap + 1;
        let start_b = 6 * commit_gap + 2;
        let fa = score_query(start_a, &[(0, seen)], &registry);
        let fb = score_query(start_b, &[(0, seen)], &registry);
        assert!(fa >= 0.0);
        assert!(fb >= fa, "later start can only be staler for same snapshot");
        // Seeing everything committed before start means zero.
        let all_seen = score_query(start_b, &[(0, 6)], &registry);
        assert_eq!(all_seen, 0.0);
    });
}

// ---------------------------------------------------------------------------
// Retry policy and shared retry budget (§6e)
// ---------------------------------------------------------------------------

#[test]
fn retry_backoff_ceiling_is_monotone_and_jitter_stays_in_bounds() {
    property("retry_backoff_bounds", 64, |rng| {
        let policy = RetryPolicy {
            initial_backoff: Duration::from_micros(rng.gen_range(1u64..5_000)),
            max_backoff: Duration::from_micros(rng.gen_range(1u64..50_000)),
            ..RetryPolicy::default()
        };
        let mut hat = HatRng::seeded(rng.gen());
        let mut prev_ceiling = Duration::ZERO;
        for attempt in 1..=24u32 {
            let exp = attempt.saturating_sub(1).min(20);
            let ceiling = policy
                .initial_backoff
                .saturating_mul(1u32 << exp)
                .min(policy.max_backoff);
            // The jitter window's ceiling only ever grows with the
            // attempt number (until the cap), never shrinks.
            assert!(ceiling >= prev_ceiling);
            prev_ceiling = ceiling;
            let mut distinct = HashSet::new();
            let mut top_half = false;
            for _ in 0..64 {
                let b = policy.backoff(attempt, &mut hat);
                assert!(b <= ceiling, "jitter above its ceiling: {b:?} > {ceiling:?}");
                assert!(b <= policy.max_backoff, "jitter above the hard cap");
                distinct.insert(b);
                top_half |= b >= ceiling / 2;
            }
            // Full jitter really jitters: with a ≥1µs window, 64 draws
            // land more than one value and reach the upper half (each
            // failing spuriously with probability ≤ 2⁻⁶⁴).
            if ceiling >= Duration::from_micros(1) {
                assert!(distinct.len() > 1, "no jitter at attempt {attempt}");
                assert!(top_half, "jitter never reached [ceiling/2, ceiling]");
            }
        }
    });
}

#[test]
fn retry_budget_concurrent_spend_never_exceeds_cap() {
    property("retry_budget_cap", 32, |rng| {
        let cap = rng.gen_range(1u32..200);
        let threads = rng.gen_range(2usize..8);
        let attempts_each = rng.gen_range(1u64..200);
        let budget = RetryBudget::new(RetryBudgetConfig { cap, refill_per_success: 0.0 });
        let spent: u64 = std::thread::scope(|s| {
            (0..threads)
                .map(|_| {
                    let b = &budget;
                    s.spawn(move || (0..attempts_each).filter(|_| b.try_spend()).count() as u64)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        // With refill off, racing spenders get *exactly* min(cap, offered)
        // tokens between them — no lost updates, no double spends.
        assert_eq!(spent, u64::from(cap).min(attempts_each * threads as u64));
        assert_eq!(budget.available(), u64::from(cap) - spent);
    });
}

#[test]
fn retry_budget_refill_is_exact_and_saturates_at_cap() {
    property("retry_budget_refill", 64, |rng| {
        let cap = rng.gen_range(1u32..100);
        let refill = rng.gen_range(0u32..2000) as f64 / 1000.0;
        let budget = RetryBudget::new(RetryBudgetConfig { cap, refill_per_success: refill });
        while budget.try_spend() {}
        assert_eq!(budget.available(), 0, "a drained budget has nothing left");
        let successes = rng.gen_range(0u64..400);
        for _ in 0..successes {
            budget.on_success();
        }
        // Milli-token fixed point makes fractional refill exact: after s
        // successes from empty, available = min(s * refill, cap).
        let refill_milli = (refill * 1000.0) as u64;
        let earned_milli = (successes * refill_milli).min(u64::from(cap) * 1000);
        assert_eq!(budget.available(), earned_milli / 1000);
        assert!(budget.available() <= u64::from(cap));
    });
}

#[test]
fn retry_budget_conserves_tokens_under_concurrent_spend_and_refill() {
    property("retry_budget_conservation", 32, |rng| {
        let cap = rng.gen_range(1u32..50);
        let refill = rng.gen_range(0u32..1000) as f64 / 1000.0;
        let refill_milli = (refill * 1000.0) as u64;
        let budget = RetryBudget::new(RetryBudgetConfig { cap, refill_per_success: refill });
        let iters = rng.gen_range(1u64..300);
        let threads = 4u64;
        let spent: u64 = std::thread::scope(|s| {
            (0..threads)
                .map(|t| {
                    let b = &budget;
                    s.spawn(move || {
                        let mut n = 0u64;
                        for i in 0..iters {
                            if b.try_spend() {
                                n += 1;
                            }
                            if (i + t) % 3 == 0 {
                                b.on_success();
                            }
                        }
                        n
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        // Conservation: every spent token was either initial fill or a
        // refund — the aggregate retry stream is bounded by
        // cap + successes × refill no matter how the threads interleave.
        let refills = threads * (iters / 3 + 1);
        assert!(
            spent * 1000 <= u64::from(cap) * 1000 + refills * refill_milli,
            "spent {spent} tokens from cap {cap} with ≤{refills} refills of {refill_milli}m"
        );
        assert!(budget.available() <= u64::from(cap), "refill overshot the cap");
    });
}

// ---------------------------------------------------------------------------
// Log-linear histogram quantiles
// ---------------------------------------------------------------------------

#[test]
fn histogram_quantiles_stay_within_one_bucket_of_exact() {
    property("histogram_tail_accuracy", 48, |rng| {
        let n = rng.gen_range(1usize..4000);
        let mut values: Vec<u64> = (0..n)
            .map(|_| {
                // Shifted draws span the full log-linear range, so the
                // p999 tail crosses bucket-width regimes.
                let shift = rng.gen_range(0u32..60);
                rng.gen::<u64>() >> shift
            })
            .collect();
        let snap = HistogramSnapshot::from_values(&values);
        values.sort_unstable();
        assert_eq!(snap.count, n as u64);
        assert_eq!(snap.min, values[0]);
        assert_eq!(snap.max, *values.last().unwrap());
        for &q in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = values[rank - 1];
            let est = snap.quantile(q);
            // The estimate never understates the true quantile, and
            // overstates it by at most one log-linear bucket (≤ 1/16
            // relative — the tail-accuracy contract p999 relies on).
            assert!(est >= exact, "q={q}: estimate {est} < exact {exact}");
            assert!(
                est - exact <= exact / 16 + 1,
                "q={q}: estimate {est} > one bucket above exact {exact}"
            );
        }
        assert_eq!(snap.quantile(1.0), *values.last().unwrap());
    });
}

#[test]
fn freshness_aggregation_is_order_invariant() {
    property("freshness_aggregation_is_order_invariant", 128, |rng| {
        let n = rng.gen_range(1usize..100);
        let mut samples: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 10.0).collect();
        let a = FreshnessAgg::from_samples(&samples);
        samples.reverse();
        let b = FreshnessAgg::from_samples(&samples);
        assert!((a.mean - b.mean).abs() < 1e-9);
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.max, b.max);
        assert!(a.p50 <= a.p95 && a.p95 <= a.p99 && a.p99 <= a.max);
        let points = cdf(&samples);
        assert_eq!(points.len(), samples.len());
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
    });
}
