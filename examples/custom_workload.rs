//! Using the pieces à la carte: a custom transaction mix, a hand-written
//! analytical query through the `QuerySpec` API, and direct engine
//! sessions — the extension points a downstream user of this library gets.
//!
//! Run with: `cargo run --release --example custom_workload`

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{BenchmarkConfig, Harness};
use hattrick_repro::bench::workload::TxnMix;
use hattrick_repro::common::ids::{customer, lineorder, TableId};
use hattrick_repro::engine::{DualConfig, DualEngine, HtapEngine, NamedIndex, QueryOpts};
use hattrick_repro::query::predicate::{ColPredicate, Predicate};
use hattrick_repro::query::spec::{AggExpr, GroupKey, JoinSpec, QueryId, QuerySpec};

fn main() {
    let data = generate(ScaleFactor(0.005), 99);
    let engine = Arc::new(DualEngine::new(DualConfig::default()));
    data.load_into(engine.as_ref()).expect("load");

    // --- 1. A hand-written analytical query ------------------------------
    // "Revenue by customer region for high-discount lines" — not an SSB
    // query, but expressible in the same QuerySpec algebra.
    let spec = QuerySpec {
        id: QueryId::Q1_1, // ids label output; any tag works
        fact: TableId::Lineorder,
        fact_filter: Predicate::and(vec![ColPredicate::U32Between(
            lineorder::DISCOUNT,
            8,
            10,
        )]),
        joins: vec![JoinSpec {
            dim: TableId::Customer,
            fact_key: lineorder::CUSTKEY,
            dim_key: customer::CUSTKEY,
            dim_filter: Predicate::all(),
            payload: vec![customer::REGION],
        }],
        group_by: vec![GroupKey::DimStr(0, 0)],
        agg: AggExpr::SumMoney(lineorder::REVENUE),
    };
    let out = engine.query(&spec, &QueryOpts::default()).expect("query");
    println!("revenue by region (discount 8-10):");
    for g in &out.groups {
        println!("  {:<12} {:>14.2}", g.key[0].to_string(), g.agg as f64 / 100.0);
    }
    assert!(!out.groups.is_empty());

    // --- 2. A direct transactional session --------------------------------
    // Look a customer up by name and read its payment counter.
    let mut session = engine.begin();
    let (rid, row) = session
        .lookup_str(NamedIndex::CustomerName, "Customer#000000001")
        .expect("lookup")
        .expect("customer 1 exists");
    println!(
        "customer 1 at rid {rid}: city={}, paymentcnt={}",
        row[customer::CITY].as_str().unwrap(),
        row[customer::PAYMENTCNT].as_u32().unwrap()
    );
    session.abort();

    // --- 3. A skewed transaction mix --------------------------------------
    // 90% payments stress the dimension-update path; Count Orders off.
    let harness = Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(400),
            seed: 1,
            reset_between_points: true,
            ..Default::default()
        },
    )
    .with_mix(TxnMix { new_order: 10, payment: 90, count_orders: 0 });
    let m = harness.run_point(4, 1).unwrap();
    println!(
        "payment-heavy mix: {:.0} tps / {:.1} qps, {} aborts (write-conflict retries)",
        m.tps, m.qps, m.aborts()
    );
}
