//! Durability modes and what they cost: the same shared engine run with
//! durability `Off`, modelled group commit (`Sleep`, the benchmark
//! baseline), and a real on-disk WAL with fsync group commit (`Fsync`).
//!
//! The interesting output is not just the throughput spread but the
//! group-commit batch sizes: under concurrent T-clients one fsync (or one
//! modelled latency window) covers many commits, so the per-commit cost
//! of durability shrinks as pressure grows — the classic group-commit
//! effect the `Sleep` default imitates.
//!
//! Run with: `cargo run --release --example durability`

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{BenchmarkConfig, Harness, PointMeasurement};
use hattrick_repro::bench::report;
use hattrick_repro::engine::{
    DurabilityMode, EngineConfig, HtapEngine, ShdEngine, WalConfig,
};

fn run_mode(mode: DurabilityMode, t: u32, a: u32) -> PointMeasurement {
    let data = generate(ScaleFactor(0.01), 5);
    let engine: Arc<dyn HtapEngine> =
        Arc::new(ShdEngine::new(EngineConfig::builder().durability(mode).build()));
    data.load_into(engine.as_ref()).expect("load");
    let harness = Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(900),
            seed: 17,
            reset_between_points: true,
            ..Default::default()
        },
    );
    harness.run_point(t, a).unwrap()
}

fn main() {
    let wal_dir = std::env::temp_dir().join(format!("hat-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);

    let modes: [(&str, DurabilityMode); 3] = [
        ("off", DurabilityMode::Off),
        ("sleep (default)", DurabilityMode::SleepDefault),
        ("fsync", DurabilityMode::Fsync(WalConfig::new(&wal_dir))),
    ];

    println!("shared engine, 8 T-clients : 2 A-clients, SF 0.01\n");
    let mut baseline_tps = 0.0;
    for (label, mode) in modes {
        let m = run_mode(mode, 8, 2);
        if label == "off" {
            baseline_tps = m.tps;
        }
        let relative = if baseline_tps > 0.0 { m.tps / baseline_tps } else { 1.0 };
        println!(
            "durability {label:<16} tps={:>8.0} ({:>5.1}% of off)  qps={:>6.1}",
            m.tps,
            relative * 100.0,
            m.qps
        );
        match report::durability_line(&m.metrics_end) {
            Some(line) => println!("  {}", line.trim_start()),
            None => println!("  durability: none (commits acknowledged immediately)"),
        }
        println!();
    }

    let wal_bytes: u64 = std::fs::read_dir(&wal_dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0);
    println!(
        "fsync WAL left {} bytes of segments + checkpoints in {}",
        wal_bytes,
        wal_dir.display()
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}
