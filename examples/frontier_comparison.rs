//! Frontier comparison: run the saturation method (§3.3) on two engine
//! designs, overlay their throughput frontiers, classify their shapes, and
//! apply the paper's envelopment rule (§6.6).
//!
//! Run with: `cargo run --release --example frontier_comparison`

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::frontier::{build_grid, classify, Frontier, SaturationConfig};
use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{BenchmarkConfig, Harness};
use hattrick_repro::bench::report::{ascii_plot, Series};
use hattrick_repro::engine::{
    EngineConfig, HtapEngine, IsoConfig, IsoEngine, ReplicationMode, ShdEngine,
};

fn measure(engine: Arc<dyn HtapEngine>, sf: f64) -> (String, Frontier) {
    let data = generate(ScaleFactor(sf), 11);
    let name = engine.name();
    data.load_into(engine.as_ref()).expect("load");
    let harness = Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(300),
            seed: 3,
            reset_between_points: true,
            ..Default::default()
        },
    );
    let cfg = SaturationConfig { lines: 4, points_per_line: 4, max_clients: 16, epsilon: 0.08 };
    let grid = build_grid(&harness, &cfg);
    println!(
        "{name}: tau_max={} alpha_max={} X_T={:.0} X_A={:.2}",
        grid.tau_max, grid.alpha_max, grid.x_t, grid.x_a
    );
    (name, Frontier::from_grid(&grid))
}

fn main() {
    let sf = 0.01;
    // A shared-design engine (one data copy, shared resources)...
    let (shared_name, shared) =
        measure(Arc::new(ShdEngine::new(EngineConfig::default())), sf);
    // ...versus an isolated-design engine (primary + streaming replica).
    let (iso_name, iso) = measure(
        Arc::new(IsoEngine::new(IsoConfig {
            mode: ReplicationMode::SyncOn,
            ..IsoConfig::default()
        })),
        sf,
    );

    println!(
        "{}",
        ascii_plot(
            "throughput frontiers",
            "T throughput (tps)",
            "A throughput (qps)",
            &[
                Series {
                    name: &shared_name,
                    marker: 'o',
                    points: shared.points.iter().map(|p| (p.t, p.a)).collect(),
                },
                Series {
                    name: &iso_name,
                    marker: '+',
                    points: iso.points.iter().map(|p| (p.t, p.a)).collect(),
                },
            ],
            64,
            20,
        )
    );

    for (name, frontier) in [(&shared_name, &shared), (&iso_name, &iso)] {
        println!(
            "{name}: area ratio {:.3} -> {}",
            frontier.area_ratio(),
            classify(frontier).describe()
        );
    }

    // §6.6's comparison rule: only a frontier that completely envelops the
    // other (with no worse freshness) declares a winner.
    if shared.envelops(&iso, 40) {
        println!("{shared_name} envelops {iso_name}");
    } else if iso.envelops(&shared, 40) {
        println!("{iso_name} envelops {shared_name}");
    } else {
        println!("neither frontier envelops the other: consult workload mix and freshness");
    }
}
