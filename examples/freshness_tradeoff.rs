//! The freshness/performance trade-off (§6.3, Figure 8): the same
//! isolated-design engine under `synchronous_commit = on` (asynchronous
//! replay, stale queries) versus `remote_apply` (fresh queries, slower
//! commits).
//!
//! Run with: `cargo run --release --example freshness_tradeoff`

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::freshness::{cdf, FreshnessAgg};
use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{BenchmarkConfig, Harness, PointMeasurement};
use hattrick_repro::bench::report::{ascii_plot, Series};
use hattrick_repro::engine::{HtapEngine, IsoConfig, IsoEngine, ReplicationMode};

fn run_mode(mode: ReplicationMode, t: u32, a: u32) -> PointMeasurement {
    let data = generate(ScaleFactor(0.01), 5);
    let engine: Arc<dyn HtapEngine> =
        Arc::new(IsoEngine::new(IsoConfig { mode, ..IsoConfig::default() }));
    data.load_into(engine.as_ref()).expect("load");
    let harness = Harness::new(
        engine,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(900),
            seed: 17,
            reset_between_points: true,
            ..Default::default()
        },
    );
    harness.run_point(t, a).unwrap()
}

fn main() {
    println!("isolated engine, 8 T-clients : 2 A-clients (the stale-prone ratio)\n");
    let mut cdf_series = Vec::new();
    for mode in [ReplicationMode::SyncOn, ReplicationMode::RemoteApply] {
        let m = run_mode(mode, 8, 2);
        let agg = FreshnessAgg::from_samples(&m.freshness);
        println!(
            "mode {:<13} tps={:>8.0}  qps={:>6.1}  freshness: mean={:.4}s p99={:.4}s ({:.0}% fresh)",
            mode.label(),
            m.tps,
            m.qps,
            agg.mean,
            agg.p99,
            agg.zero_fraction * 100.0
        );
        if mode == ReplicationMode::RemoteApply {
            assert!(
                agg.p99 < 1e-3,
                "remote_apply must deliver zero freshness scores"
            );
        }
        cdf_series.push((mode.label().to_string(), cdf(&m.freshness)));
    }

    println!();
    let series: Vec<Series> = cdf_series
        .iter()
        .zip(['o', '+'])
        .map(|((name, points), marker)| Series {
            name,
            marker,
            points: points.clone(),
        })
        .collect();
    println!(
        "{}",
        ascii_plot(
            "freshness CDF by replication mode",
            "freshness score (s)",
            "fraction of queries",
            &series,
            64,
            18,
        )
    );
    println!(
        "The trade-off of §6.3: remote_apply buys perfect freshness by paying \
         commit latency (lower tps); ON mode keeps commits fast but lets the \
         replica lag, so analytical queries read stale snapshots."
    );
}
