//! Chaos demo: run the HATtrick mix on the isolated (primary/replica)
//! engine while a seeded fault plan partitions and browns out the
//! replication link, and the replica is crashed and restarted mid-run.
//!
//! The same seed always produces the same fault schedule, so a chaos run
//! is replayable. After recovery the replica drains its WAL backlog and
//! the report shows how the clients coped: retries with backoff, in-doubt
//! commits, and the replication backlog high-water mark.
//!
//! Run with: `cargo run --release --example chaos`

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::freshness::FreshnessAgg;
use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{BenchmarkConfig, Harness, RetryPolicy};
use hattrick_repro::bench::report;
use hattrick_repro::engine::{
    FaultInjector, FaultPlan, FaultPlanConfig, HtapEngine, IsoConfig, IsoEngine,
    ReplicationMode,
};

fn main() {
    let seed = 0xC4A0_5EED;

    // 1. Isolated design: primary row store + replica fed over a simulated
    //    network link. Sync commits wait at most `commit_timeout` for the
    //    replica before returning committed-in-doubt.
    let data = generate(ScaleFactor(0.005), 42);
    let engine = Arc::new(IsoEngine::new(IsoConfig {
        mode: ReplicationMode::Async,
        commit_timeout: Duration::from_millis(50),
        ..IsoConfig::default()
    }));
    data.load_into(engine.as_ref()).expect("load");
    println!("engine: {} ({})", engine.name(), engine.design().label());

    // 2. A deterministic fault schedule over the run: short partitions and
    //    latency brownouts, derived from the seed.
    let plan = FaultPlan::generate(
        seed,
        Duration::from_millis(1200),
        &FaultPlanConfig {
            mean_gap: Duration::from_millis(150),
            min_duration: Duration::from_millis(20),
            max_duration: Duration::from_millis(60),
            ..FaultPlanConfig::default()
        },
    );
    println!("fault plan ({} windows):", plan.windows().len());
    for w in plan.windows() {
        println!("  +{:>6.0?} for {:>5.0?}: {:?}", w.start, w.duration, w.kind);
    }
    let mut injector = FaultInjector::spawn(plan, Arc::clone(engine.link()));

    // 3. Crash the replica mid-run and bring it back; it rejoins from the
    //    retained WAL at its last applied LSN.
    let chaos = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            println!("  !! replica crashed");
            engine.crash_replica();
            std::thread::sleep(Duration::from_millis(200));
            engine.restart_replica().expect("rejoin from retained WAL");
            println!("  !! replica restarted, catching up from WAL");
        })
    };

    // 4. Drive a mixed point through it all. The client drivers retry
    //    retryable failures with capped exponential backoff + jitter.
    let dynamic: Arc<dyn HtapEngine> = engine.clone();
    let harness = Harness::new(
        dynamic,
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(900),
            seed,
            reset_between_points: false,
            retry: RetryPolicy::default(),
            ..BenchmarkConfig::default()
        },
    );
    let point = harness.run_point(4, 2).unwrap();
    chaos.join().unwrap();
    injector.stop();

    // 5. Recover fully and report.
    if engine.is_replica_down() {
        engine.restart_replica().unwrap();
    }
    engine.quiesce_replication();
    println!(
        "hybrid throughput under chaos: {:.0} tps, {:.1} qps ({} commits, {} queries)",
        point.tps, point.qps, point.committed(), point.queries()
    );
    println!("{}", report::resilience_line(&point.metrics).trim_start());
    let agg = FreshnessAgg::from_samples(&point.freshness);
    println!(
        "freshness: mean {:.4}s, p99 {:.4}s, max {:.4}s",
        agg.mean, agg.p99, agg.max
    );
    assert_eq!(engine.stats().replication_backlog, 0, "backlog drained");
    println!("replica fully caught up: backlog 0, no lost commits");
}
