//! Quickstart: load a tiny HATtrick database into the shared engine, run a
//! mixed workload point, and print the hybrid throughput and freshness.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use hattrick_repro::bench::freshness::FreshnessAgg;
use hattrick_repro::bench::gen::{generate, ScaleFactor};
use hattrick_repro::bench::harness::{BenchmarkConfig, Harness};
use hattrick_repro::bench::report;
use hattrick_repro::engine::{EngineConfig, HtapEngine, ShdEngine};

fn main() {
    // 1. Generate HATtrick data (SSB schema + HISTORY + FRESHNESS).
    let data = generate(ScaleFactor(0.01), 42);
    println!(
        "generated {} lineorder rows / {} customers ({:.1} MB raw)",
        data.lineorder.len(),
        data.customer.len(),
        data.approx_bytes() as f64 / 1e6
    );

    // 2. Build an engine — here the shared design (PostgreSQL-like
    //    single-copy MVCC) — and bulk-load the data.
    let engine = ShdEngine::new(EngineConfig::default());
    data.load_into(&engine).expect("load");
    println!("engine: {} ({} design)", engine.name(), engine.design().label());

    // 3. Drive one operating point: 4 transactional + 2 analytical clients.
    let harness = Harness::new(
        Arc::new(engine),
        data.profile.clone(),
        BenchmarkConfig {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(800),
            seed: 7,
            reset_between_points: true,
            ..Default::default()
        },
    );
    let point = harness.run_point(4, 2).unwrap();

    // 4. Report hybrid throughput and the freshness score (§4).
    println!(
        "hybrid throughput: {:.0} tps, {:.1} qps ({} commits, {} queries, {} aborts)",
        point.tps, point.qps, point.committed(), point.queries(), point.aborts()
    );
    let agg = FreshnessAgg::from_samples(&point.freshness);
    println!(
        "freshness: mean {:.4}s, p99 {:.4}s, {:.0}% of queries fully fresh",
        agg.mean,
        agg.p99,
        agg.zero_fraction * 100.0
    );
    // A single-copy engine serves every query from the current snapshot:
    assert!(agg.p99 < 0.05, "shared design should be (near-)perfectly fresh");

    // 5. The same measurement rendered the way the paper plots it.
    let frontier = hattrick_repro::bench::frontier::Frontier::from_points(vec![
        hattrick_repro::bench::frontier::FrontierPoint {
            t: point.tps,
            a: point.qps,
            t_clients: 4,
            a_clients: 2,
        },
    ]);
    println!("{}", report::frontier_ascii("quickstart point", &frontier));
}
