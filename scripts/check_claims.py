#!/usr/bin/env python3
"""Verify the paper's qualitative shape claims against a `figures all` log.

Prints one PASS/FAIL line per claim; exits non-zero if any fail.
Usage: scripts/check_claims.py [results/full_run.log]
"""
import re
import sys

LOG = sys.argv[1] if len(sys.argv) > 1 else "results/full_run.log"

panel_re = re.compile(r"^-- panel (\S+)")
metrics_re = re.compile(
    r"tau_max=(\d+) alpha_max=(\d+) X_T=([\d.]+) X_A=([\d.]+) "
    r"area_ratio=([\d.-]+) class=(\w+) retention\(T=([\d.]+),A=([\d.]+)\)"
)
fresh_re = re.compile(
    r"freshness T:A=(\d+:\d+): p99=([\d.]+)s mean=([\d.]+)s over (\d+) queries"
)

panels = {}   # name -> dict
freshness = []  # (figure, panel-context, ratio, p99)

fig = None
panel = None
with open(LOG) as f:
    for line in f:
        m = re.match(r"^== (\S+):", line)
        if m:
            fig = m.group(1)
            continue
        m = panel_re.match(line.strip())
        if m:
            panel = f"{fig}/{m.group(1)}"
            continue
        m = metrics_re.search(line)
        if m:
            tau, alpha, xt, xa, ratio, cls, tr, ar = m.groups()
            panels[panel] = {
                "xt": float(xt), "xa": float(xa), "ratio": float(ratio),
                "class": cls, "tr": float(tr), "ar": float(ar), "fig": fig,
            }
            continue
        m = fresh_re.search(line)
        if m:
            freshness.append((fig, panel, m.group(1), float(m.group(2))))

results = []

def claim(name, ok, detail=""):
    results.append((name, ok, detail))

def p(name):
    return panels.get(name)

# --- fig2 exemplars: isolated ratio > learner ratio > dual ratio, dual low.
a, b, c = p("fig2/pg-sr-large"), p("fig2/tidb-medium"), p("fig2/system-x-small")
if a and b and c:
    claim("fig2: isolated@large most isolation-like", a["ratio"] >= b["ratio"] - 0.05,
          f"{a['ratio']:.2f} vs {b['ratio']:.2f}")
    claim("fig2: dual@small shows the weakest shape", c["ratio"] <= min(a["ratio"], b["ratio"]),
          f"{c['ratio']:.2f}")

# --- fig5: shared engine at/below proportional; X_A decreasing with SF;
#     freshness zero at every ratio.
s_small, s_med, s_large = (p(f"fig5/shared-sf-{x}") for x in ["small", "medium", "large"])
if s_small and s_med and s_large:
    claim("fig5: shared never in the Isolation class",
          all(x["class"] != "Isolation" for x in [s_small, s_med, s_large]),
          ",".join(x["class"] for x in [s_small, s_med, s_large]))
    claim("fig5: X_A falls as SF grows",
          s_small["xa"] > s_med["xa"] > s_large["xa"],
          f"{s_small['xa']:.0f} > {s_med['xa']:.0f} > {s_large['xa']:.0f}")
fig5_fresh = [f for f in freshness if f[0] == "fig5"]
if fig5_fresh:
    claim("fig5: shared engine perfectly fresh",
          all(p99 < 0.01 for (_, _, _, p99) in fig5_fresh),
          str([p99 for (_, _, _, p99) in fig5_fresh]))

# --- fig6a: read committed X_T >= serializable X_T.
ser, rc = p("fig6a/serializable"), p("fig6a/read-committed")
if ser and rc:
    # 15% slack: pure-T points on one core vary run to run; the paper's
    # claim is about the mixed region, checked via the area ratio too.
    claim("fig6a: read committed reaches at least serializable's X_T",
          rc["xt"] >= ser["xt"] * 0.85, f"{rc['xt']:.0f} vs {ser['xt']:.0f}")
    claim("fig6a: read committed's shape at least matches serializable's",
          rc["ratio"] >= ser["ratio"] - 0.08,
          f"{rc['ratio']:.2f} vs {ser['ratio']:.2f}")

# --- fig6b: no-indexes worst on both axes; all-indexes best X_A;
#     semi >= all on X_T.
none, semi, alli = p("fig6b/no-indexes"), p("fig6b/semi-indexes"), p("fig6b/all-indexes")
if none and semi and alli:
    claim("fig6b: no-indexes has the worst X_T",
          none["xt"] < semi["xt"] and none["xt"] < alli["xt"],
          f"{none['xt']:.0f} vs {semi['xt']:.0f}/{alli['xt']:.0f}")
    claim("fig6b: all-indexes has the best X_A",
          alli["xa"] >= semi["xa"] and alli["xa"] >= none["xa"],
          f"{alli['xa']:.1f} vs {semi['xa']:.1f}/{none['xa']:.1f}")
    claim("fig6b: semi-indexes at least matches all-indexes on pure T",
          semi["xt"] >= alli["xt"] * 0.9, f"{semi['xt']:.0f} vs {alli['xt']:.0f}")

# --- fig7: isolated ratios above shared's at same SF; staleness grows with
#     T share at every SF.
for sf in ["small", "medium", "large"]:
    iso_p, shd_p = p(f"fig7/iso-on-sf-{sf}"), p(f"fig5/shared-sf-{sf}")
    if iso_p and shd_p:
        claim(f"fig7: isolated beats shared on shape at sf-{sf}",
              iso_p["ratio"] > shd_p["ratio"],
              f"{iso_p['ratio']:.2f} vs {shd_p['ratio']:.2f}")
fig7_fresh = [f for f in freshness if f[0] == "fig7"]
by_ctx = {}
for (_, ctx, ratio, p99) in fig7_fresh:
    by_ctx.setdefault(ctx, {})[ratio] = p99
for ctx, vals in by_ctx.items():
    if {"20:80", "80:20"} <= set(vals):
        claim(f"fig7: staleness grows with T share ({ctx})",
              vals["80:20"] >= vals["20:80"],
              f"{vals['20:80']:.3f} -> {vals['80:20']:.3f}")

# --- fig8a: ON faster on T, RA fresh.
on, ra = p("fig8a/mode-on"), p("fig8a/mode-remote-apply")
if on and ra:
    claim("fig8a: mode ON has higher X_T than remote-apply",
          on["xt"] > ra["xt"], f"{on['xt']:.0f} vs {ra['xt']:.0f}")
fig8a_fresh = [f for f in freshness if f[0] == "fig8a"]
if fig8a_fresh:
    # Second half of the prints corresponds to remote-apply (run order).
    ra_scores = [p99 for (_, _, _, p99) in fig8a_fresh[3:]]
    on_scores = [p99 for (_, _, _, p99) in fig8a_fresh[:3]]
    if ra_scores and on_scores:
        claim("fig8a: remote-apply perfectly fresh", all(s < 0.005 for s in ra_scores),
              str(ra_scores))
        claim("fig8a: mode ON shows staleness", any(s > 0.005 for s in on_scores),
              str(on_scores))

# --- fig9/10: hybrids perfectly fresh.
for figid in ["fig9", "fig10", "fig11"]:
    fr = [f for f in freshness if f[0] == figid]
    if fr:
        claim(f"{figid}: hybrid engine perfectly fresh",
              all(p99 < 0.01 for (_, _, _, p99) in fr),
              str([p99 for (_, _, _, p99) in fr]))

# --- fig9 vs fig5: columnar analytics beat row analytics at same SF.
for sf in ["medium", "large"]:
    d, s = p(f"fig9/dual-sf-{sf}"), p(f"fig5/shared-sf-{sf}")
    if d and s:
        claim(f"fig9: dual X_A above shared X_A at sf-{sf}",
              d["xa"] > s["xa"], f"{d['xa']:.1f} vs {s['xa']:.1f}")

# --- fig10 vs fig11: distributed has lower X_T, at-least X_A, better shape.
for sf in ["small", "medium", "large"]:
    single, dist = p(f"fig10/learner-single-sf-{sf}"), p(f"fig11/learner-dist-sf-{sf}")
    if single and dist:
        claim(f"fig11: distributed X_T below single-node at sf-{sf}",
              dist["xt"] < single["xt"], f"{dist['xt']:.0f} vs {single['xt']:.0f}")
        claim(f"fig11: distributed X_A at least single-node's at sf-{sf}",
              dist["xa"] >= single["xa"] * 0.85,
              f"{dist['xa']:.1f} vs {single['xa']:.1f}")

# --- report ---------------------------------------------------------------
failed = 0
for name, ok, detail in results:
    mark = "PASS" if ok else "FAIL"
    if not ok:
        failed += 1
    print(f"[{mark}] {name}  ({detail})")
print(f"\n{len(results) - failed}/{len(results)} claims hold")
sys.exit(1 if failed else 0)
