#!/usr/bin/env python3
"""Digest results/full_run.log into a per-figure markdown record for
EXPERIMENTS.md. Pure-stdlib; run after `figures all`.
"""
import re
import sys

LOG = sys.argv[1] if len(sys.argv) > 1 else "results/full_run.log"

fig_re = re.compile(r"^== (\S+): (.+) ==$")
panel_re = re.compile(r"^-- panel (\S+)")
metrics_re = re.compile(
    r"tau_max=(\d+) alpha_max=(\d+) X_T=([\d.]+) X_A=([\d.]+) "
    r"area_ratio=([\d.-]+) class=(\w+) retention\(T=([\d.]+),A=([\d.]+)\)"
)
fresh_re = re.compile(
    r"freshness T:A=(\d+:\d+): p99=([\d.]+)s mean=([\d.]+)s over (\d+) queries"
)
ratio_re = re.compile(r"ratio (\d+:\d+): (\d+)% fresh, p99 ([\d.]+)s, max ([\d.]+)s")
done_re = re.compile(r"^done in (.+)$")

sections = []
current = None
panel = None

with open(LOG) as f:
    for line in f:
        line = line.rstrip()
        m = fig_re.match(line)
        if m:
            current = {"id": m.group(1), "title": m.group(2), "rows": []}
            sections.append(current)
            panel = None
            continue
        if current is None:
            continue
        m = panel_re.match(line.strip())
        if m:
            panel = m.group(1)
            continue
        m = metrics_re.search(line)
        if m:
            current["rows"].append(
                ("panel", panel or "?", m.groups())
            )
            continue
        m = fresh_re.search(line)
        if m:
            current["rows"].append(("fresh", panel or "-", m.groups()))
            continue
        m = ratio_re.search(line)
        if m:
            current["rows"].append(("cdf", panel or "-", m.groups()))
            continue
        m = done_re.match(line)
        if m:
            current = None

print("## Per-figure record (latest full run)\n")
for sec in sections:
    print(f"### {sec['id']} — {sec['title']}\n")
    panels = [r for r in sec["rows"] if r[0] == "panel"]
    if panels:
        print("| panel | τ_max | α_max | X_T (tps) | X_A (qps) | area ratio | shape | T-retention | A-retention |")
        print("|---|---|---|---|---|---|---|---|---|")
        for _, name, g in panels:
            tau, alpha, xt, xa, ratio, cls, tr, ar = g
            print(f"| {name} | {tau} | {alpha} | {float(xt):.0f} | {float(xa):.1f} | {ratio} | {cls} | {tr} | {ar} |")
        print()
    fresh = [r for r in sec["rows"] if r[0] == "fresh"]
    if fresh:
        print("| freshness at T:A | p99 (s) | mean (s) | queries |")
        print("|---|---|---|---|")
        for _, _, g in fresh:
            ratio, p99, mean, n = g
            print(f"| {ratio} | {p99} | {mean} | {n} |")
        print()
    cdfs = [r for r in sec["rows"] if r[0] == "cdf"]
    if cdfs:
        print("| CDF ratio | % fresh | p99 (s) | max (s) |")
        print("|---|---|---|---|")
        for _, _, g in cdfs:
            print(f"| {g[0]} | {g[1]} | {g[2]} | {g[3]} |")
        print()
