#!/usr/bin/env bash
# Post-run finalization: EXPERIMENTS digest, full test run, full bench run.
# Run only when no figures process is active.
set -uo pipefail
cd "$(dirname "$0")/.."

echo "== appending results digest to EXPERIMENTS.md =="
python3 scripts/summarize_results.py results/full_run.log >> EXPERIMENTS.md

echo "== cargo test --workspace =="
cargo test --workspace 2>&1 | tee test_output.txt | grep "test result:" | tail -5

echo "== cargo bench --workspace =="
cargo bench --workspace 2>&1 | tee bench_output.txt | grep -c "time:"

echo "finalize done"
