//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the thin slice of `rand` 0.8's API it actually uses:
//! `SmallRng`, the `Rng` / `RngCore` / `SeedableRng` traits, `gen_range`
//! over half-open and inclusive integer ranges, `gen_bool`, and `gen::<T>()`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `SmallRng` uses on 64-bit targets — so statistical
//! quality is adequate for benchmark workloads and streams are fully
//! deterministic for a given seed.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: raw 32/64-bit output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seeding interface. Only `seed_from_u64` is provided; that is the sole
/// constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. `p = 0.0` never fires and
    /// `p = 1.0` always fires.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 uniform bits -> f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw an offset in `[0, span)` without modulo bias worth caring about:
/// multiply-shift maps 64 random bits onto the span. `span` is at most
/// 2^64 (full u64 inclusive range), which the u128 product accommodates.
#[inline]
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    (rng.next_u64() as u128 * span) >> 64
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_i128();
        let hi = self.end.to_i128();
        assert!(lo < hi, "gen_range: empty range");
        let offset = sample_span(rng, (hi - lo) as u128);
        T::from_i128(lo + offset as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_i128();
        let hi = self.end().to_i128();
        assert!(lo <= hi, "gen_range: empty range");
        let offset = sample_span(rng, (hi - lo) as u128 + 1);
        T::from_i128(lo + offset as i128)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and good enough for simulation work.
    /// Matches the construction `rand 0.8` uses for `SmallRng` on 64-bit
    /// platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
