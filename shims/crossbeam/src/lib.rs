//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided — the WAL fan-out uses unbounded
//! MPSC channels — and it is a thin veneer over `std::sync::mpsc`, whose
//! modern implementation is itself the crossbeam channel algorithm.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_cloned_senders() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn recv_after_disconnect_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
