//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics: `lock()`
//! / `read()` / `write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered rather than propagated — matching
//! `parking_lot`'s poison-free semantics closely enough for this workspace.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Nameable guard type (stored in structs, e.g. commit-critical-section
/// holders). Internally an `Option` so [`Condvar::wait`] can temporarily
/// take the std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Mirror of `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard invariant");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard invariant");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let deadline = Instant::now() + Duration::from_millis(10);
        let mut timed_out = false;
        while !*g {
            if cv.wait_until(&mut g, deadline).timed_out() {
                timed_out = true;
                break;
            }
        }
        assert!(timed_out);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
