//! Offline stand-in for the `criterion` crate.
//!
//! Implements the slice of criterion's API the workspace benches use —
//! `benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, `BenchmarkId`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — with a lightweight warmup + timed loop instead
//! of criterion's statistical machinery. `cargo bench` therefore still runs
//! every routine and prints a per-benchmark ns/iter estimate, just without
//! outlier analysis or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement; accepted for source
/// compatibility. The shim times one routine call per setup either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A `function-name/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Accepts either a plain string or a [`BenchmarkId`] as a benchmark label.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Per-benchmark measurement driver handed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by the `iter*` methods.
    ns_per_iter: f64,
    /// Wall-clock budget for the timed loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { ns_per_iter: 0.0, budget }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: one call, which also gives a duration estimate used to
        // pick the iteration count for the timed loop.
        let probe_start = Instant::now();
        std::hint::black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        let iters = (self.budget.as_nanos() / probe.as_nanos()).clamp(1, 1_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let probe_start = Instant::now();
        std::hint::black_box(routine(input));
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        let iters = (self.budget.as_nanos() / probe.as_nanos()).clamp(1, 1_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// Top-level driver passed to each `criterion_group!` target.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short per-benchmark budget: `cargo bench` stays in the seconds
        // range across the whole suite instead of criterion's minutes.
        Criterion { budget: Duration::from_millis(30) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), budget: self.budget, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into_label(), self.budget, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget.min(Duration::from_millis(200));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into_label(), self.budget, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.label, self.budget, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, label: &str, budget: Duration, mut f: F) {
    let mut bencher = Bencher::new(budget);
    f(&mut bencher);
    let full = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    println!("bench {full:<60} ~{:>12.0} ns/iter", bencher.ns_per_iter);
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_routines() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(10);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.ns_per_iter >= 0.0);
    }
}
