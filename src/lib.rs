//! Umbrella crate for the HATtrick reproduction: re-exports the public API
//! of every workspace crate so examples and integration tests can use a
//! single dependency.

pub use hat_common as common;
pub use hat_engine as engine;
pub use hat_query as query;
pub use hat_storage as storage;
pub use hat_txn as txn;
pub use hattrick as bench;
